package gen

import (
	"fmt"
	"sort"
	"sync"

	"mggcn/internal/graph"
)

// DatasetSpec describes one benchmark dataset: the full-scale statistics
// from the paper's Table 1 plus the Scale divisor this reproduction
// generates it at. Generated instances preserve average degree, feature
// width and class count; device memory capacities are divided by the same
// Scale so OOM boundaries are preserved (see DESIGN.md §2).
type DatasetSpec struct {
	Name      string
	FullN     int64   // vertices at paper scale
	FullM     int64   // directed edges at paper scale
	FeatDim   int     // d(0)
	Classes   int     // d(L)
	AvgDegree float64 // k = m/n
	Scale     int     // generation divisor: generated n = FullN/Scale
	Seed      uint64
}

// GenN returns the generated vertex count FullN/Scale.
func (s DatasetSpec) GenN() int { return int(s.FullN / int64(s.Scale)) }

// Catalog returns the paper's Table 1 datasets with this repo's scale
// factors. The map key is the lower-case dataset name.
func Catalog() map[string]DatasetSpec {
	specs := []DatasetSpec{
		{Name: "cora", FullN: 3_300, FullM: 9_200, FeatDim: 3703, Classes: 6, AvgDegree: 3, Scale: 1, Seed: 101},
		{Name: "arxiv", FullN: 169_000, FullM: 1_160_000, FeatDim: 128, Classes: 40, AvgDegree: 7, Scale: 4, Seed: 102},
		{Name: "papers", FullN: 111_000_000, FullM: 1_610_000_000, FeatDim: 128, Classes: 172, AvgDegree: 15, Scale: 1024, Seed: 103},
		{Name: "products", FullN: 2_500_000, FullM: 126_000_000, FeatDim: 104, Classes: 47, AvgDegree: 52, Scale: 64, Seed: 104},
		{Name: "proteins", FullN: 8_740_000, FullM: 1_300_000_000, FeatDim: 128, Classes: 256, AvgDegree: 150, Scale: 512, Seed: 105},
		{Name: "reddit", FullN: 233_000, FullM: 115_000_000, FeatDim: 602, Classes: 41, AvgDegree: 492, Scale: 32, Seed: 106},
	}
	out := make(map[string]DatasetSpec, len(specs))
	for _, s := range specs {
		out[s.Name] = s
	}
	return out
}

// CatalogNames returns the catalog dataset names in the paper's figure
// order (Cora, Arxiv, Products, Proteins, Reddit — Papers is used only in
// the Table 2/3 comparison).
func CatalogNames() []string {
	return []string{"cora", "arxiv", "products", "proteins", "reddit"}
}

// AllNames returns every catalog name, sorted.
func AllNames() []string {
	c := Catalog()
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Load generates (or returns the cached) instance of a catalog dataset.
// phantom instances carry adjacency structure only; non-phantom instances
// include features, labels and splits and are only sensible for the smaller
// datasets.
func Load(name string, phantom bool) (*graph.Graph, DatasetSpec, error) {
	spec, ok := Catalog()[name]
	if !ok {
		return nil, DatasetSpec{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, AllNames())
	}
	key := fmt.Sprintf("%s/phantom=%t", name, phantom)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[key]; ok {
		return g, spec, nil
	}
	cfg := DefaultBTER(spec.GenN(), spec.AvgDegree, spec.Seed)
	g := Generate(spec.Name, cfg, spec.FeatDim, spec.Classes, phantom)
	cache[key] = g
	return g, spec, nil
}

// DegreeScaledSpec returns the Figure-9 synthetic family member: the Arxiv
// degree profile with the average degree multiplied by factor (1, 2, ...,
// 128) at a fixed vertex count. Feature width 512 and 40 classes per §6.
func DegreeScaledSpec(factor int) DatasetSpec {
	if factor < 1 {
		panic(fmt.Sprintf("gen: degree scale factor %d < 1", factor))
	}
	return DatasetSpec{
		Name:      fmt.Sprintf("arxiv-%dx", factor),
		FullN:     8_192, // fixed n; Fig 9 scales only the degree
		FullM:     int64(8_192 * 7 * factor),
		FeatDim:   512,
		Classes:   40,
		AvgDegree: 7 * float64(factor),
		Scale:     1,
		Seed:      200 + uint64(factor),
	}
}

// LoadDegreeScaled generates (with caching) the Figure-9 family member for
// the given degree multiplier.
func LoadDegreeScaled(factor int, phantom bool) (*graph.Graph, DatasetSpec) {
	spec := DegreeScaledSpec(factor)
	key := fmt.Sprintf("%s/phantom=%t", spec.Name, phantom)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[key]; ok {
		return g, spec
	}
	cfg := DefaultBTER(spec.GenN(), spec.AvgDegree, spec.Seed)
	g := Generate(spec.Name, cfg, spec.FeatDim, spec.Classes, phantom)
	cache[key] = g
	return g, spec
}

// ClearCache drops all cached datasets (tests use it to bound memory).
func ClearCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = map[string]*graph.Graph{}
}
