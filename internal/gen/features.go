package gen

import (
	"math/rand"

	"mggcn/internal/sparse"
	"mggcn/internal/tensor"
)

// PropagatedLabels assigns class labels with homophily: seed vertices get
// random classes, then labels diffuse along edges for a few rounds (each
// vertex adopting the majority label of its neighborhood). The result is a
// label field correlated with graph structure, which is what lets a GCN
// outperform a pure MLP — the property the paper's accuracy check relies on.
func PropagatedLabels(adj *sparse.CSR, classes int, rng *rand.Rand) []int32 {
	n := adj.Rows
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(rng.Intn(classes))
	}
	counts := make([]int32, classes)
	for round := 0; round < 3; round++ {
		next := make([]int32, n)
		for v := 0; v < n; v++ {
			cols, _ := adj.Row(v)
			if len(cols) == 0 {
				next[v] = labels[v]
				continue
			}
			for i := range counts {
				counts[i] = 0
			}
			counts[labels[v]] += 2 // self-affinity keeps mixing partial
			for _, u := range cols {
				counts[labels[u]]++
			}
			best := int32(0)
			for c := 1; c < classes; c++ {
				if counts[c] > counts[best] {
					best = int32(c)
				}
			}
			next[v] = best
		}
		labels = next
	}
	// Guarantee every class appears so the softmax head sees all classes.
	for c := 0; c < classes && c < n; c++ {
		labels[rng.Intn(n)] = int32(c)
	}
	return labels
}

// ClassFeatures builds an n x featDim feature matrix where each vertex's
// features are its class centroid plus Gaussian noise of the given scale.
// Low noise makes each vertex individually classifiable; high noise makes
// single vertices near-uninformative so only neighborhood aggregation (the
// GCN's advantage over an MLP, §2) recovers the signal.
func ClassFeatures(labels []int32, featDim, classes int, noise float64, rng *rand.Rand) *tensor.Dense {
	centroids := tensor.NewDense(classes, featDim)
	for i := range centroids.Data {
		centroids.Data[i] = float32(rng.NormFloat64())
	}
	x := tensor.NewDense(len(labels), featDim)
	for v, l := range labels {
		cRow := centroids.Row(int(l))
		row := x.Row(v)
		for j := range row {
			row[j] = cRow[j] + float32(noise)*float32(rng.NormFloat64())
		}
	}
	return x
}
