package graph

import (
	"math"
	"testing"

	"mggcn/internal/sparse"
	"mggcn/internal/tensor"
)

func tinyGraph() *Graph {
	adj := sparse.FromCoo(4, 4, []sparse.Coo{
		{Row: 0, Col: 1}, {Row: 1, Col: 0}, {Row: 1, Col: 2},
		{Row: 2, Col: 3}, {Row: 3, Col: 2},
	}, false)
	feats := tensor.NewDense(4, 2)
	return &Graph{
		Name: "tiny", Adj: adj, Features: feats,
		Labels: []int32{0, 1, 0, 1}, Classes: 2, FeatDim: 2,
	}
}

func TestGraphBasics(t *testing.T) {
	g := tinyGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if math.Abs(g.AvgDegree()-1.25) > 1e-12 {
		t.Fatalf("AvgDegree=%v", g.AvgDegree())
	}
	if g.IsPhantom() {
		t.Fatalf("graph with features reported phantom")
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	g := tinyGraph()
	g.Labels[2] = 9
	if g.Validate() == nil {
		t.Fatalf("Validate missed out-of-range label")
	}
}

func TestValidateCatchesFeatureMismatch(t *testing.T) {
	g := tinyGraph()
	g.Features = tensor.NewDense(3, 2)
	if g.Validate() == nil {
		t.Fatalf("Validate missed feature row mismatch")
	}
	g = tinyGraph()
	g.FeatDim = 5
	if g.Validate() == nil {
		t.Fatalf("Validate missed FeatDim mismatch")
	}
}

func TestDegrees(t *testing.T) {
	g := tinyGraph()
	out := g.OutDegrees()
	if out[1] != 2 || out[0] != 1 {
		t.Fatalf("out degrees %v", out)
	}
	in := g.InDegrees()
	if in[2] != 2 || in[1] != 1 || in[0] != 1 || in[3] != 1 {
		t.Fatalf("in degrees %v", in)
	}
}

func TestNormalizedAdjColumnsAverage(t *testing.T) {
	g := tinyGraph()
	norm := g.NormalizedAdj()
	// Column 2 has in-degree 2; both entries must be 1/2.
	d := norm.ToDenseRows()
	if d[1][2] != 0.5 || d[3][2] != 0.5 {
		t.Fatalf("normalization wrong: %v", d)
	}
}

func TestDegreeStats(t *testing.T) {
	st := ComputeDegreeStats([]int64{1, 1, 1, 1})
	if st.Gini != 0 || st.Mean != 1 || st.Min != 1 || st.Max != 1 {
		t.Fatalf("uniform stats wrong: %+v", st)
	}
	skewed := ComputeDegreeStats([]int64{0, 0, 0, 100})
	if skewed.Gini < 0.7 {
		t.Fatalf("skewed distribution should have high Gini, got %v", skewed.Gini)
	}
	if skewed.Max != 100 || skewed.Mean != 25 {
		t.Fatalf("skewed stats wrong: %+v", skewed)
	}
	if got := ComputeDegreeStats(nil); got != (DegreeStats{}) {
		t.Fatalf("empty stats should be zero: %+v", got)
	}
}

func TestSplitPartitionsVertices(t *testing.T) {
	g := tinyGraph()
	g.Split(0.5, 0.25, 42)
	counts := [3]int{}
	for v := 0; v < g.N(); v++ {
		k := 0
		if g.TrainMask[v] {
			counts[0]++
			k++
		}
		if g.ValMask[v] {
			counts[1]++
			k++
		}
		if g.TestMask[v] {
			counts[2]++
			k++
		}
		if k != 1 {
			t.Fatalf("vertex %d in %d masks", v, k)
		}
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("split counts %v", counts)
	}
}

func TestSplitDeterministic(t *testing.T) {
	g1, g2 := tinyGraph(), tinyGraph()
	g1.Split(0.5, 0.25, 7)
	g2.Split(0.5, 0.25, 7)
	for v := 0; v < g1.N(); v++ {
		if g1.TrainMask[v] != g2.TrainMask[v] {
			t.Fatalf("split not deterministic at vertex %d", v)
		}
	}
}

func TestSplitBadFractionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	tinyGraph().Split(0.9, 0.2, 1)
}
