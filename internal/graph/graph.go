// Package graph defines the labeled-graph dataset type consumed by GCN
// training: a CSR adjacency, optional node features, labels, and
// train/val/test splits, plus degree statistics used by the load-balance
// experiments.
package graph

import (
	"fmt"
	"sort"

	"mggcn/internal/sparse"
	"mggcn/internal/tensor"
)

// Graph is a node-labeled graph dataset. Adj holds the directed adjacency
// with Adj[u] containing u's out-edges (an edge u->v is a stored entry at
// row u, column v). Features may be nil in phantom (structure-only) mode.
type Graph struct {
	Name     string
	Adj      *sparse.CSR
	Features *tensor.Dense // n x d, nil in phantom mode
	Labels   []int32       // length n, class per vertex; nil in phantom mode
	Classes  int
	FeatDim  int // feature width; authoritative even when Features is nil

	// TrainMask/ValMask/TestMask partition the vertices for the
	// semi-supervised node prediction task. Nil masks mean "all train".
	TrainMask, ValMask, TestMask []bool
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.Adj.Rows }

// M returns the number of directed edges (stored adjacency entries).
func (g *Graph) M() int64 { return g.Adj.NNZ() }

// AvgDegree returns M/N.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(g.M()) / float64(g.N())
}

// Validate checks the dataset's structural invariants.
func (g *Graph) Validate() error {
	if g.Adj == nil {
		return fmt.Errorf("graph %q: nil adjacency", g.Name)
	}
	if g.Adj.Rows != g.Adj.Cols {
		return fmt.Errorf("graph %q: adjacency not square (%dx%d)", g.Name, g.Adj.Rows, g.Adj.Cols)
	}
	if err := g.Adj.Validate(); err != nil {
		return fmt.Errorf("graph %q: %w", g.Name, err)
	}
	if g.Features != nil {
		if g.Features.Rows != g.N() {
			return fmt.Errorf("graph %q: %d feature rows for %d vertices", g.Name, g.Features.Rows, g.N())
		}
		if g.Features.Cols != g.FeatDim {
			return fmt.Errorf("graph %q: feature width %d, FeatDim %d", g.Name, g.Features.Cols, g.FeatDim)
		}
	}
	if g.Labels != nil {
		if len(g.Labels) != g.N() {
			return fmt.Errorf("graph %q: %d labels for %d vertices", g.Name, len(g.Labels), g.N())
		}
		for v, l := range g.Labels {
			if int(l) < 0 || int(l) >= g.Classes {
				return fmt.Errorf("graph %q: vertex %d label %d outside %d classes", g.Name, v, l, g.Classes)
			}
		}
	}
	for _, m := range [][]bool{g.TrainMask, g.ValMask, g.TestMask} {
		if m != nil && len(m) != g.N() {
			return fmt.Errorf("graph %q: mask length %d for %d vertices", g.Name, len(m), g.N())
		}
	}
	return nil
}

// IsPhantom reports whether the graph carries structure but no feature or
// label payload (cost-model-only mode).
func (g *Graph) IsPhantom() bool { return g.Features == nil }

// NormalizedAdj returns Â per eq. (2) — entries of column v divided by v's
// in-degree — so that Âᵀ H averages in-neighbor features.
func (g *Graph) NormalizedAdj() *sparse.CSR { return sparse.NormalizeInDegree(g.Adj) }

// OutDegrees returns the out-degree of every vertex.
func (g *Graph) OutDegrees() []int64 {
	d := make([]int64, g.N())
	for i := range d {
		d[i] = g.Adj.RowNNZ(i)
	}
	return d
}

// InDegrees returns the in-degree of every vertex.
func (g *Graph) InDegrees() []int64 {
	d := make([]int64, g.N())
	for _, c := range g.Adj.ColIdx {
		d[c]++
	}
	return d
}

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max, Median int64
	Mean             float64
	// Gini is the Gini coefficient of the distribution; 0 is perfectly
	// uniform, values near 1 indicate heavy skew (a predictor of the
	// load imbalance that §5.2's permutation fixes).
	Gini float64
}

// ComputeDegreeStats summarizes degs.
func ComputeDegreeStats(degs []int64) DegreeStats {
	if len(degs) == 0 {
		return DegreeStats{}
	}
	s := make([]int64, len(degs))
	copy(s, degs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum float64
	for _, d := range s {
		sum += float64(d)
	}
	st := DegreeStats{
		Min:    s[0],
		Max:    s[len(s)-1],
		Median: s[len(s)/2],
		Mean:   sum / float64(len(s)),
	}
	if sum > 0 {
		// Gini via the sorted formula: (2*sum_i i*x_i)/(n*sum) - (n+1)/n.
		var weighted float64
		for i, d := range s {
			weighted += float64(i+1) * float64(d)
		}
		n := float64(len(s))
		st.Gini = 2*weighted/(n*sum) - (n+1)/n
	}
	return st
}

// Split assigns deterministic train/val/test masks with the given fractions
// (test gets the remainder). Fractions must be non-negative and sum to <= 1.
func (g *Graph) Split(trainFrac, valFrac float64, seed uint64) {
	if trainFrac < 0 || valFrac < 0 || trainFrac+valFrac > 1 {
		panic(fmt.Sprintf("graph: bad split fractions %g/%g", trainFrac, valFrac))
	}
	n := g.N()
	g.TrainMask = make([]bool, n)
	g.ValMask = make([]bool, n)
	g.TestMask = make([]bool, n)
	// Deterministic pseudo-shuffle via splitmix64 hashing of the index.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return mix64(uint64(order[i])+seed) < mix64(uint64(order[j])+seed)
	})
	nTrain := int(trainFrac * float64(n))
	nVal := int(valFrac * float64(n))
	for i, v := range order {
		switch {
		case i < nTrain:
			g.TrainMask[v] = true
		case i < nTrain+nVal:
			g.ValMask[v] = true
		default:
			g.TestMask[v] = true
		}
	}
}

// mix64 is the splitmix64 finalizer, used for cheap deterministic hashing.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
