package baseline

import (
	"math"

	"mggcn/internal/graph"
	"mggcn/internal/nn"
)

// DistGNNConfig is an analytic cost model of DistGNN (Md et al. 2021), the
// CPU-cluster full-graph trainer of the paper's Table 2: dual-socket Intel
// Xeon 9242 nodes joined by a Mellanox HDR fabric, Libra vertex-cut
// partitioning with delayed remote aggregation. The paper quotes DistGNN's
// published numbers rather than re-running it; this model regenerates
// comparable numbers from the published hardware constants so the Table
// 2-vs-3 comparison can be reproduced end to end.
type DistGNNConfig struct {
	Hidden int
	Layers int

	// Per-socket roofline: 48 Zen-less Cascade-Lake cores at 2.3 GHz.
	SocketMemBW float64 // bytes/s
	SocketFlops float64 // fp32 flop/s
	// Efficiency is the fraction of roofline a sparse CPU workload
	// sustains (gather-dominated SpMM with irregular access).
	Efficiency float64
	// NetBW is the per-node HDR InfiniBand bandwidth.
	NetBW float64
	// CutFrac is the fraction of edges crossing partitions under the
	// vertex-cut at socket count s, modeled as 1 - s^(-CutExp).
	CutExp float64
	// EpochOverhead is the fixed per-epoch synchronization cost.
	EpochOverhead float64
}

// NewDistGNN returns the calibrated DistGNN model.
func NewDistGNN(hidden, layers int) DistGNNConfig {
	return DistGNNConfig{
		Hidden:        hidden,
		Layers:        layers,
		SocketMemBW:   140e9,
		SocketFlops:   3.5e12,
		Efficiency:    0.35,
		NetBW:         25e9,
		CutExp:        0.6,
		EpochOverhead: 0.1,
	}
}

// EpochSeconds prices one full-batch epoch on sockets sockets for the
// dataset at full scale (memScale multiplies the generated instance's sizes
// back up, as elsewhere).
func (c DistGNNConfig) EpochSeconds(g *graph.Graph, memScale, sockets int) float64 {
	S := int64(memScale)
	n := int64(g.N()) * S
	nnz := g.M() * S
	dims := nn.LayerDims(g.FeatDim, c.Hidden, c.Layers, g.Classes)

	// Compute: per layer one SpMM + GeMM forward, two GeMMs + one SpMM
	// backward, split across sockets. Like DGL, DistGNN aggregates in the
	// narrower of the two layer widths.
	var memBytes, flops float64
	for l := 0; l < c.Layers; l++ {
		dIn, dOut := float64(dims[l]), float64(dims[l+1])
		w := dOut
		if dIn < dOut {
			w = dIn
		}
		// Aggregation touches every edge at width w, twice per layer
		// (forward + backward).
		memBytes += 2 * float64(nnz) * (8 + w*4)
		memBytes += 2 * float64(n) * w * 4
		flops += 2 * 2 * float64(nnz) * w
		// Transforms: forward, W-grad, H-grad.
		flops += 3 * 2 * float64(n) * dIn * dOut
	}
	s := float64(sockets)
	memTime := memBytes / (c.SocketMemBW * c.Efficiency * s)
	flopTime := flops / (c.SocketFlops * c.Efficiency * s)
	compute := memTime
	if flopTime > compute {
		compute = flopTime
	}

	// Communication: vertex-cut (Libra) halo exchange. The replicated
	// vertices scale with the cut edges, so the exchanged volume is
	// proportional to m times the aggregation width, forward and backward,
	// with the cut fraction growing with socket count. Every socket drives
	// one HDR port.
	var comm float64
	if sockets > 1 {
		cut := 1 - 1/math.Pow(s, c.CutExp)
		for l := 0; l < c.Layers; l++ {
			w := float64(dims[l+1])
			if float64(dims[l]) < w {
				w = float64(dims[l])
			}
			vol := cut * float64(nnz) * w * 4 * 2
			comm += vol / (c.NetBW * s)
		}
		// Synchronization and delayed-aggregation bookkeeping: grows with
		// the socket count (per-peer message handling), calibrated to the
		// flat Reddit scaling of Table 2.
		comm += float64(2*c.Layers) * 0.04 * math.Sqrt(s)
	}
	return compute + comm + c.EpochOverhead
}
