package baseline

import (
	"testing"

	"mggcn/internal/gen"
	"mggcn/internal/graph"
	"mggcn/internal/sim"
)

func loadPhantom(t *testing.T, name string) (*graph.Graph, int) {
	t.Helper()
	g, spec, err := gen.Load(name, true)
	if err != nil {
		t.Fatal(err)
	}
	return g, spec.Scale
}

func TestDGLEpochPositiveAndScalesWithModel(t *testing.T) {
	g, scale := loadPhantom(t, "arxiv")
	small := NewDGL(sim.DGXV100(), scale, 64, 2).EpochSeconds(g)
	big := NewDGL(sim.DGXV100(), scale, 512, 3).EpochSeconds(g)
	if small <= 0 || big <= small {
		t.Fatalf("DGL epochs: small=%g big=%g", small, big)
	}
}

func TestDGLSlowerOnV100ThanA100(t *testing.T) {
	if testing.Short() {
		t.Skip("phantom reddit generation: long e2e, skipped in -short")
	}
	g, scale := loadPhantom(t, "reddit")
	v := NewDGL(sim.DGXV100(), scale, 512, 2).EpochSeconds(g)
	a := NewDGL(sim.DGXA100(), scale, 512, 2).EpochSeconds(g)
	if a >= v {
		t.Fatalf("A100 (%g) should beat V100 (%g)", a, v)
	}
}

func TestDGLMemoryGrowsLinearlyWithLayers(t *testing.T) {
	g, scale := loadPhantom(t, "reddit")
	c10 := NewDGL(sim.DGXV100(), scale, 512, 10)
	c20 := NewDGL(sim.DGXV100(), scale, 512, 20)
	m10, m20 := c10.MemoryBytes(g), c20.MemoryBytes(g)
	growth := float64(m20-m10) / 10 // bytes per layer
	perLayer := float64(3 * int64(g.N()) * int64(scale) * 512 * 4)
	if growth < perLayer*0.9 || growth > perLayer*1.1 {
		t.Fatalf("DGL per-layer growth %g, want ~%g (3 buffers/layer)", growth, perLayer)
	}
}

func TestFig12LayerBudgets(t *testing.T) {
	// Paper's Fig 12 readings at a 30 GiB budget on Reddit, hidden 512:
	// DGL fits ~20 layers and CAGNET(8 GPUs) ~150.
	g, scale := loadPhantom(t, "reddit")
	budget := int64(30) << 30
	dgl := NewDGL(sim.DGXV100(), scale, 512, 2).MaxLayersWithin(g, budget)
	if dgl < 14 || dgl > 28 {
		t.Fatalf("DGL max layers %d, paper ~20", dgl)
	}
	cag := NewCAGNET(sim.DGXV100(), 8, scale, 512, 2).MaxLayersWithin(g, budget)
	if cag < 110 || cag > 230 {
		t.Fatalf("CAGNET max layers %d, paper ~150", cag)
	}
	if cag <= dgl {
		t.Fatalf("8-GPU CAGNET (%d) must fit more layers than 1-GPU DGL (%d)", cag, dgl)
	}
}

func TestCAGNETScalesWithGPUs(t *testing.T) {
	if testing.Short() {
		t.Skip("phantom products sweep: long e2e, skipped in -short")
	}
	g, scale := loadPhantom(t, "products")
	prev := NewCAGNET(sim.DGXV100(), 1, scale, 512, 2).EpochSeconds(g)
	for _, p := range []int{2, 4, 8} {
		cur := NewCAGNET(sim.DGXV100(), p, scale, 512, 2).EpochSeconds(g)
		if cur >= prev {
			t.Fatalf("CAGNET did not scale at P=%d: %g -> %g", p, prev, cur)
		}
		prev = cur
	}
}

func TestCAGNETSlowerThanUnpenalizedKernels(t *testing.T) {
	g, scale := loadPhantom(t, "arxiv")
	c := NewCAGNET(sim.DGXV100(), 4, scale, 512, 2)
	fast := c
	fast.KernelEfficiency, fast.CommEfficiency, fast.OpOverhead = 1, 1, 0
	if c.EpochSeconds(g) <= fast.EpochSeconds(g) {
		t.Fatalf("efficiency penalties had no effect")
	}
}

func TestSection51CrossoverViaCommTimes(t *testing.T) {
	// §5.1: 1.5D loses to 1D on DGX-1 (factor 3/2) and wins on DGX-A100
	// (factor 3/4).
	n, d := int64(1_000_000), int64(512)
	v, a := sim.DGXV100(), sim.DGXA100()
	rv := CommTime15D(v, n, d) / CommTime1D(v, n, d)
	if rv < 1.49 || rv > 1.51 {
		t.Fatalf("DGX-1 1.5D/1D ratio %v, want 1.5", rv)
	}
	ra := CommTime15D(a, n, d) / CommTime1D(a, n, d)
	if ra < 0.74 || ra > 0.76 {
		t.Fatalf("DGX-A100 1.5D/1D ratio %v, want 0.75", ra)
	}
}

func TestDistGNNTable2Anchors(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates Table-2 datasets: long e2e, skipped in -short")
	}
	// The regenerated DistGNN numbers must land within ~3x of the paper's
	// quoted Table 2 for the small/medium datasets (Papers' quoted "1000"
	// is itself an estimate; we require only an order-of-magnitude match).
	cases := []struct {
		name       string
		hidden     int
		layers     int
		sockets    int
		paper      float64
		factorBand float64
	}{
		{"reddit", 16, 2, 1, 0.60, 3},
		{"products", 256, 3, 1, 11, 3},
		{"proteins", 256, 3, 1, 100, 3},
		{"products", 256, 3, 64, 1.74, 4},
		{"proteins", 256, 3, 64, 2.63, 4},
		{"papers", 256, 3, 1, 1000, 10},
		{"papers", 256, 3, 128, 36.45, 10},
	}
	for _, c := range cases {
		g, scale := loadPhantom(t, c.name)
		got := NewDistGNN(c.hidden, c.layers).EpochSeconds(g, scale, c.sockets)
		if got < c.paper/c.factorBand || got > c.paper*c.factorBand {
			t.Errorf("%s@%d sockets: %.2fs, paper %.2fs (band %gx)", c.name, c.sockets, got, c.paper, c.factorBand)
		}
	}
}

func TestDistGNNScalesOnLargeGraphsOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("phantom products+reddit generation: long e2e, skipped in -short")
	}
	// Products must speed up substantially from 1 to 64 sockets; Reddit
	// (tiny model, comm/sync bound) must not scale anywhere near linearly.
	gp, sp := loadPhantom(t, "products")
	prod := NewDistGNN(256, 3)
	if s := prod.EpochSeconds(gp, sp, 1) / prod.EpochSeconds(gp, sp, 64); s < 3 {
		t.Fatalf("products 64-socket speedup %v too low", s)
	}
	gr, sr := loadPhantom(t, "reddit")
	red := NewDistGNN(16, 2)
	if s := red.EpochSeconds(gr, sr, 1) / red.EpochSeconds(gr, sr, 16); s > 8 {
		t.Fatalf("reddit 16-socket speedup %v; paper shows none", s)
	}
}

func TestDGLAggregatesInNarrowWidth(t *testing.T) {
	// The width-aware order: a model whose hidden dim dwarfs the feature
	// dim must not pay hidden-width SpMM in layer 0.
	g, scale := loadPhantom(t, "arxiv")             // 128 features
	narrow := NewDGL(sim.DGXV100(), scale, 2048, 1) // single layer: SpMM at min(128, 40)
	wide := NewDGL(sim.DGXV100(), scale, 2048, 2)   // adds a 2048-wide layer
	if wide.EpochSeconds(g) < narrow.EpochSeconds(g)*1.5 {
		t.Fatalf("hidden-width layer should dominate: %g vs %g",
			wide.EpochSeconds(g), narrow.EpochSeconds(g))
	}
}
