package baseline

import (
	"fmt"

	"mggcn/internal/graph"
	"mggcn/internal/nn"
	"mggcn/internal/part"
	"mggcn/internal/sim"
)

// CAGNETConfig models CAGNET's 1D algorithm (its best-performing variant in
// the paper's runs): the same staged-broadcast SpMM as MG-GCN, but
// stage-synchronous (broadcast and compute strictly alternate, no overlap),
// with no order switch, no saved backward SpMM, no vertex permutation,
// PyTorch-kernel efficiency, and NCCL 2.4 collective efficiency.
type CAGNETConfig struct {
	Spec     sim.MachineSpec
	P        int
	MemScale int
	Hidden   int
	Layers   int
	// KernelEfficiency scales kernel throughput relative to the tuned
	// C++/cuSPARSE pipeline (PyTorch-dispatched kernels plus the extra
	// tensor materializations CAGNET performs per stage).
	KernelEfficiency float64
	// CommEfficiency scales collective bandwidth (NCCL 2.4 vs 2.11).
	CommEfficiency float64
	OpOverhead     float64
}

// NewCAGNET returns the default CAGNET model.
func NewCAGNET(spec sim.MachineSpec, p, memScale, hidden, layers int) CAGNETConfig {
	return CAGNETConfig{
		Spec: spec, P: p, MemScale: memScale, Hidden: hidden, Layers: layers,
		KernelEfficiency: 0.85, CommEfficiency: 0.8, OpOverhead: 100e-6,
	}
}

// EpochSeconds builds and schedules one CAGNET epoch, returning its
// simulated makespan.
func (c CAGNETConfig) EpochSeconds(g *graph.Graph) float64 {
	return c.EpochGraph(g).Run().Makespan
}

// EpochGraph builds one CAGNET epoch as a task graph: per layer a P-stage
// SpMM at the input width (aggregate-then-transform), with each stage's
// broadcast gating every device's stage compute (synchronous), followed by
// the transform GeMM; the backward mirrors it with both SpMMs. Tile nonzeros
// come from the graph's natural (unpermuted) ordering. Every collective
// carries a sim.Collective annotation, so internal/schedcheck can certify
// the baseline's communication volume like any shipped strategy.
func (c CAGNETConfig) EpochGraph(g *graph.Graph) *sim.Graph {
	spec := c.Spec
	S := int64(c.MemScale)
	tg := sim.NewGraph(spec, c.P)
	vec := part.Uniform(g.N(), c.P)
	tiles := part.TileNNZ(g.NormalizedAdj(), vec)
	dims := nn.LayerDims(g.FeatDim, c.Hidden, c.Layers, g.Classes)

	devices := make([]int, c.P)
	for i := range devices {
		devices[i] = i
	}
	kern := func(raw float64) float64 { return raw/c.KernelEfficiency + c.OpOverhead }

	// stagedSpMM appends one synchronous P-stage SpMM at the given dense
	// width; returns the last task per device.
	stagedSpMM := func(label string, width int) []int {
		last := make([]int, c.P)
		var prevStage []int
		for j := 0; j < c.P; j++ {
			rootRows := int(int64(vec.Size(j)) * S)
			var bcast = -1
			if c.P > 1 {
				bytes := int64(rootRows) * int64(width) * 4
				secs := spec.CommLatency + float64(bytes)/(spec.CollectiveBW(c.P)*c.CommEfficiency)
				bcast = tg.AddComm(devices, label+"/bcast", j, secs, prevStage...)
				tg.AnnotateCollective(bcast, &sim.Collective{
					Op: sim.CollBroadcast, Root: j, Group: devices,
					Rows: vec.Size(j), Cols: width, Scale: S,
				})
			}
			stage := make([]int, 0, c.P)
			for i := 0; i < c.P; i++ {
				rows := int(int64(vec.Size(i)) * S)
				var deps []int
				if bcast >= 0 {
					deps = append(deps, bcast)
				}
				id := tg.AddCompute(i, sim.KindSpMM, label, j,
					kern(spec.SpMMCost(tiles[i][j]*S, rows, rootRows, width)), true, deps...)
				stage = append(stage, id)
				last[i] = id
			}
			prevStage = stage
		}
		return last
	}
	addPerDevice := func(kind sim.Kind, label string, cost func(rows int) float64, deps ...int) []int {
		ids := make([]int, c.P)
		for i := 0; i < c.P; i++ {
			rows := int(int64(vec.Size(i)) * S)
			ids[i] = tg.AddCompute(i, kind, label, -1, kern(cost(rows)), kind == sim.KindSpMM, deps...)
		}
		return ids
	}

	for l := 0; l < c.Layers; l++ {
		dIn, dOut := dims[l], dims[l+1]
		width := dOut
		if dIn < dOut {
			width = dIn
		}
		// Compute tasks on one device serialize in issue order on its
		// compute stream, so the per-device forward chain needs no explicit
		// dependency edges.
		stagedSpMM(fmt.Sprintf("fwd%d/spmm", l), width)
		addPerDevice(sim.KindGeMM, fmt.Sprintf("fwd%d/gemm", l), func(rows int) float64 {
			return spec.GemmCost(rows, dIn, dOut)
		})
		if l < c.Layers-1 {
			addPerDevice(sim.KindActivation, fmt.Sprintf("fwd%d/relu", l), func(rows int) float64 {
				return spec.ElementwiseCost(int64(rows)*int64(dOut), 1)
			})
		}
	}
	addPerDevice(sim.KindLoss, "loss", func(rows int) float64 {
		return spec.LossCost(rows, dims[c.Layers])
	})
	var params int64
	for l := 0; l < c.Layers; l++ {
		params += int64(dims[l]) * int64(dims[l+1])
	}
	lastAllReduce := -1
	for l := c.Layers - 1; l >= 0; l-- {
		dIn, dOut := dims[l], dims[l+1]
		if l < c.Layers-1 {
			addPerDevice(sim.KindActivation, fmt.Sprintf("bwd%d/relu", l), func(rows int) float64 {
				return spec.ElementwiseCost(int64(rows)*int64(dOut), 2)
			})
		}
		wgID := addPerDevice(sim.KindGeMM, fmt.Sprintf("bwd%d/wgrad", l), func(rows int) float64 {
			return spec.GemmCost(dIn, rows, dOut)
		})
		if c.P > 1 {
			// The allreduce runs on the comm stream, which FIFO-order alone
			// does not synchronize with compute: without the wgrad deps it
			// would start at t≈0 and underprice the epoch.
			secs := spec.CommLatency + spec.AllReduceCost(params*4, c.P)/c.CommEfficiency
			lastAllReduce = tg.AddComm(devices, fmt.Sprintf("bwd%d/allreduce", l), -1, secs, wgID...)
			tg.AnnotateCollective(lastAllReduce, &sim.Collective{
				Op: sim.CollAllReduce, Root: -1, Group: devices,
				Rows: int(params), Cols: 1, Scale: 1,
			})
		}
		addPerDevice(sim.KindGeMM, fmt.Sprintf("bwd%d/hgrad", l), func(rows int) float64 {
			return spec.GemmCost(rows, dOut, dIn)
		})
		// CAGNET's manual backprop always propagates the input gradient,
		// including layer 0's full-width SpMM that MG-GCN saves (§4.4).
		stagedSpMM(fmt.Sprintf("bwd%d/spmm", l), dOut)
	}
	// Comm tasks span every device, so the comm stream serializes the
	// allreduces; gating Adam on the last-issued one gates it on all.
	var adamDeps []int
	if lastAllReduce >= 0 {
		adamDeps = append(adamDeps, lastAllReduce)
	}
	addPerDevice(sim.KindAdam, "adam", func(rows int) float64 {
		return spec.AdamCost(params)
	}, adamDeps...)
	return tg
}

// MemoryBytes returns CAGNET's per-GPU footprint at full scale: the local
// adjacency slice, feature shard, 3 persistent buffers per layer plus two
// stage-receive buffers (no reuse), and replicated model state. This is the
// Fig 12b line: ~150 layers in 30 GiB on Reddit-512 with 8 GPUs.
func (c CAGNETConfig) MemoryBytes(g *graph.Graph) int64 {
	S := int64(c.MemScale)
	n := int64(g.N()) * S
	nnz := g.M() * S
	rows := (n + int64(c.P) - 1) / int64(c.P)
	dims := nn.LayerDims(g.FeatDim, c.Hidden, c.Layers, g.Classes)
	maxD := 0
	for _, d := range dims {
		if d > maxD {
			maxD = d
		}
	}
	adj := (rows+1)*8 + nnz/int64(c.P)*8
	feats := rows * int64(g.FeatDim) * 4
	var perLayer int64
	for l := 0; l < c.Layers; l++ {
		perLayer += 3 * rows * int64(dims[l+1]) * 4
	}
	recv := 2 * rows * int64(maxD) * 4
	var params int64
	for l := 0; l < c.Layers; l++ {
		params += int64(dims[l]) * int64(dims[l+1])
	}
	return adj + feats + perLayer + recv + params*4*4
}

// MaxLayersWithin returns the largest layer count fitting in budget bytes.
func (c CAGNETConfig) MaxLayersWithin(g *graph.Graph, budget int64) int {
	best := 0
	for l := 1; l <= 4096; l++ {
		trial := c
		trial.Layers = l
		if trial.MemoryBytes(g) > budget {
			break
		}
		best = l
	}
	return best
}

// CommTime1D returns the §5.1 closed-form communication time of the 1D
// algorithm for an n x d feature matrix on the spec's 8-GPU machine:
// P broadcasts of nd/P bytes over the full group.
func CommTime1D(spec sim.MachineSpec, n, d int64) float64 {
	bytes := n * d * 4
	return float64(bytes) / spec.CollectiveBW(8)
}

// CommTime15D returns the §5.1 closed-form time of the 1.5D algorithm with
// replication factor 2: two rounds of group broadcasts of nd/4 over 4-GPU
// groups plus a reduction of nd/4 over the inter-group links (only 2 links
// on DGX-1's asymmetric topology; the full fabric behind NVSwitch).
func CommTime15D(spec sim.MachineSpec, n, d int64) float64 {
	bytes := n * d * 4
	groupBW := spec.CollectiveBW(4)
	interBW := float64(spec.GroupLinks(2)) * spec.LinkBW
	if spec.NVSwitch {
		interBW = spec.CollectiveBW(4)
	}
	return 2*float64(bytes/4)/groupBW + float64(bytes/4)/interBW
}
