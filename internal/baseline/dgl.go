// Package baseline implements the three systems the paper compares MG-GCN
// against, at the fidelity the comparison needs:
//
//   - DGL (single-GPU): aggregate-then-transform kernel order, full 2L-SpMM
//     backward pass, per-layer buffer allocation (no §4.2 reuse), and
//     framework per-op overhead. Used by Figs 10-14 (runtime) and Fig 12
//     (memory vs layers).
//   - CAGNET (multi-GPU, 1D and 1.5D): the same 1D staged-broadcast SpMM as
//     MG-GCN but stage-synchronous (no §4.3 overlap), without buffer reuse,
//     with PyTorch-era kernel efficiency and an older NCCL. Used by Figs
//     10-12 and the §5.1 analysis.
//   - DistGNN (CPU cluster): an analytic Xeon-9242 + HDR-interconnect cost
//     model regenerating Table 2.
//
// These models share the machine specs and cost model of internal/sim so
// every framework is priced by the same hardware.
package baseline

import (
	"mggcn/internal/graph"
	"mggcn/internal/nn"
	"mggcn/internal/sim"
)

// DGLConfig models the DGL v0.7 single-GPU trainer.
type DGLConfig struct {
	Spec     sim.MachineSpec
	MemScale int // dataset scale divisor (costs are priced at full scale)
	Hidden   int
	Layers   int
	// OpOverhead is the per-kernel framework overhead (Python dispatch,
	// allocator traffic) added on top of the raw kernel cost.
	OpOverhead float64
	// KernelEfficiency is DGL's sustained kernel throughput relative to
	// the hand-tuned pipeline (unfused message passing, allocator copies).
	KernelEfficiency float64
}

// NewDGL returns the default DGL model on the given machine.
func NewDGL(spec sim.MachineSpec, memScale, hidden, layers int) DGLConfig {
	return DGLConfig{
		Spec: spec, MemScale: memScale, Hidden: hidden, Layers: layers,
		OpOverhead: 80e-6, KernelEfficiency: 0.55,
	}
}

// EpochSeconds prices one full-batch epoch of DGL on the dataset. DGL's
// GraphConv performs the same width-aware order switch as §4.4, and
// PyTorch autograd skips the layer-0 input-gradient SpMM when the features
// do not require gradients — so DGL runs the same kernel *set* as MG-GCN.
// Its deficit is sustained kernel efficiency (unfused message passing and
// allocator traffic) plus per-op framework dispatch, which is what the
// paper's 1.4-3.1x single-GPU gaps measure.
func (c DGLConfig) EpochSeconds(g *graph.Graph) float64 {
	spec := c.Spec
	S := int64(c.MemScale)
	n := int(int64(g.N()) * S)
	nnz := g.M() * S
	dims := nn.LayerDims(g.FeatDim, c.Hidden, c.Layers, g.Classes)
	var t float64
	op := func(raw float64) { t += raw/c.KernelEfficiency + c.OpOverhead }

	for l := 0; l < c.Layers; l++ {
		dIn, dOut := dims[l], dims[l+1]
		width := dOut
		if dIn < dOut {
			width = dIn // aggregate first in the narrower dimension
		}
		op(spec.SpMMCost(nnz, n, n, width))
		op(spec.GemmCost(n, dIn, dOut))
		// Unfused message passing materializes an extra intermediate.
		op(spec.ElementwiseCost(int64(n)*int64(dOut), 1))
		if l < c.Layers-1 {
			op(spec.ElementwiseCost(int64(n)*int64(dOut), 1))
		}
	}
	op(spec.LossCost(n, dims[c.Layers]))
	for l := c.Layers - 1; l >= 0; l-- {
		dIn, dOut := dims[l], dims[l+1]
		if l < c.Layers-1 {
			op(spec.ElementwiseCost(int64(n)*int64(dOut), 2))
		}
		op(spec.GemmCost(dIn, n, dOut)) // W_G
		if l > 0 {
			op(spec.GemmCost(n, dOut, dIn))    // H_G through W
			op(spec.SpMMCost(nnz, n, n, dOut)) // gradient aggregation
		}
	}
	var params int64
	for l := 0; l < c.Layers; l++ {
		params += int64(dims[l]) * int64(dims[l+1])
	}
	op(spec.AdamCost(params))
	return t
}

// MemoryBytes returns DGL's per-GPU memory for the dataset at full scale:
// adjacency + features + 3 persistent n x d buffers per layer (aggregated
// messages, pre-activation, activation — none reused across layers, all
// retained for the backward pass) + 2 transient gradient buffers + model
// state. This is the Fig 12 line: ~20 layers in 30 GiB on Reddit-512.
func (c DGLConfig) MemoryBytes(g *graph.Graph) int64 {
	S := int64(c.MemScale)
	n := int64(g.N()) * S
	nnz := g.M() * S
	dims := nn.LayerDims(g.FeatDim, c.Hidden, c.Layers, g.Classes)
	maxD := 0
	for _, d := range dims {
		if d > maxD {
			maxD = d
		}
	}
	adj := (n+1)*8 + nnz*8
	feats := n * int64(g.FeatDim) * 4
	var perLayer int64
	for l := 0; l < c.Layers; l++ {
		perLayer += 3 * n * int64(dims[l+1]) * 4
	}
	transient := 2 * n * int64(maxD) * 4
	var params int64
	for l := 0; l < c.Layers; l++ {
		params += int64(dims[l]) * int64(dims[l+1])
	}
	return adj + feats + perLayer + transient + params*4*4
}

// MaxLayersWithin returns the largest layer count whose MemoryBytes fits in
// budget bytes (at full scale), or 0 if even one layer does not fit.
func (c DGLConfig) MaxLayersWithin(g *graph.Graph, budget int64) int {
	best := 0
	for l := 1; l <= 4096; l++ {
		trial := c
		trial.Layers = l
		if trial.MemoryBytes(g) > budget {
			break
		}
		best = l
	}
	return best
}
