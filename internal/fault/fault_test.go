package fault

import (
	"errors"
	"math"
	"testing"
	"time"

	"mggcn/internal/comm"
	"mggcn/internal/sim"
	"mggcn/internal/tensor"
)

func TestCrashFailsDeviceDeterministically(t *testing.T) {
	run := func() (err error, stats Stats) {
		in := New(Plan{Crash: &CrashSpec{Device: 1, OnLabel: "spmm", After: 1}})
		g := sim.NewGraph(sim.DGXV100(), 2)
		g.Fault = in
		var ran []string
		prev := -1
		for i, label := range []string{"spmm fw", "spmm fw", "gemm"} {
			var deps []int
			if prev >= 0 {
				deps = []int{prev}
			}
			id := g.AddCompute(1, sim.KindSpMM, label, i, 1, true, deps...)
			l := label
			g.Bind(id, func() { ran = append(ran, l) })
			prev = id
		}
		err = g.Execute(1)
		if len(ran) != 1 || ran[0] != "spmm fw" {
			t.Fatalf("ran %v, want exactly the first spmm (After=1 skips one match)", ran)
		}
		return err, in.Stats()
	}
	err, stats := run()
	var lost *sim.DeviceLostError
	if !errors.As(err, &lost) || lost.Device != 1 {
		t.Fatalf("Execute = %v, want DeviceLostError{1}", err)
	}
	if stats.Crashes != 1 {
		t.Fatalf("stats.Crashes = %d, want 1", stats.Crashes)
	}
	// Determinism: a second identical run crashes identically.
	err2, _ := run()
	if err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("second run failed differently: %v vs %v", err2, err)
	}
}

func TestCrashedDeviceStaysDeadUntilObserveRemoval(t *testing.T) {
	in := New(Plan{Crash: &CrashSpec{Device: 0}})
	g := sim.NewGraph(sim.DGXV100(), 2)
	g.Fault = in
	a := g.AddCompute(0, sim.KindGeMM, "first", -1, 1, false)
	g.Bind(a, func() {})
	if err := g.Execute(1); err == nil {
		t.Fatal("first task survived a crash plan with After=0")
	}
	// A fresh graph on the same machine: the device is still dead.
	g2 := sim.NewGraph(sim.DGXV100(), 2)
	g2.Fault = in
	b := g2.AddCompute(0, sim.KindGeMM, "again", -1, 1, false)
	g2.Bind(b, func() {})
	if err := g2.Execute(1); err == nil {
		t.Fatal("crashed device came back without ObserveRemoval")
	}
	// After the trainer removed the device, index 0 is a renumbered
	// survivor and must run normally.
	in.ObserveRemoval(0)
	g3 := sim.NewGraph(sim.DGXV100(), 1)
	g3.Fault = in
	c := g3.AddCompute(0, sim.KindGeMM, "survivor", -1, 1, false)
	ran := false
	g3.Bind(c, func() { ran = true })
	if err := g3.Execute(1); err != nil || !ran {
		t.Fatalf("renumbered survivor failed after ObserveRemoval: err=%v ran=%v", err, ran)
	}
}

func TestStragglerDelaysWithoutChangingResults(t *testing.T) {
	in := New(Plan{Straggler: &StragglerSpec{Device: 0, Delay: time.Millisecond, Every: 2}})
	g := sim.NewGraph(sim.DGXV100(), 1)
	g.Fault = in
	sum := 0
	prev := -1
	for i := 0; i < 4; i++ {
		var deps []int
		if prev >= 0 {
			deps = []int{prev}
		}
		id := g.AddCompute(0, sim.KindGeMM, "gemm", -1, 1, false, deps...)
		v := i + 1
		g.Bind(id, func() { sum += v })
		prev = id
	}
	if err := g.Execute(2); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if sum != 10 {
		t.Fatalf("sum = %d, want 10 (straggler must be latency-only)", sum)
	}
	if got := in.Stats().Delays; got != 2 {
		t.Fatalf("stats.Delays = %d, want 2 (every 2nd of 4 tasks)", got)
	}
}

func TestPoisonFillsDeclaredWritesWithNaN(t *testing.T) {
	in := New(Plan{Poison: &PoisonSpec{Label: "spmm fw", Stage: 1, Device: 0, Occurrence: 1}})
	g := sim.NewGraph(sim.DGXV100(), 1)
	g.Reg = sim.NewBufRegistry()
	g.Fault = in

	out := tensor.NewDense(2, 2)
	out.Buf = int(g.Reg.Register("h0"))
	g.Reg.Track(sim.BufID(out.Buf), out.Data)
	clean := tensor.NewDense(2, 2)
	clean.Buf = int(g.Reg.Register("h1"))
	g.Reg.Track(sim.BufID(clean.Buf), clean.Data)

	a := g.AddCompute(0, sim.KindSpMM, "spmm fw", 0, 1, true)
	g.BindRW(a, nil, sim.BufsOf(clean), func() { clean.Fill(1) })
	b := g.AddCompute(0, sim.KindSpMM, "spmm fw", 1, 1, true, a)
	g.BindRW(b, nil, sim.BufsOf(out), func() { out.Fill(1) })
	if err := g.Execute(1); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !math.IsNaN(float64(out.Data[0])) || !math.IsNaN(float64(out.Data[3])) {
		t.Fatalf("poisoned buffer = %v, want all NaN", out.Data)
	}
	if clean.Data[0] != 1 {
		t.Fatalf("stage-0 buffer corrupted: %v (poison must match stage exactly)", clean.Data)
	}
	if got := in.Stats().Poisons; got != 1 {
		t.Fatalf("stats.Poisons = %d, want 1", got)
	}
}

// fakeClock records backoff sleeps without waiting.
type fakeClock struct{ slept []time.Duration }

func (c *fakeClock) Sleep(d time.Duration) { c.slept = append(c.slept, d) }

func TestTransientFaultsAreRetriedAway(t *testing.T) {
	runBroadcast := func(in *Injector, retry comm.RetryPolicy) ([]float32, error) {
		g := sim.NewGraph(sim.DGXV100(), 2)
		if in != nil {
			g.Fault = in
		}
		cg := comm.New(g)
		cg.Retry = retry
		cg.Clock = &fakeClock{}
		if in != nil {
			cg.Gate = in
		}
		src := tensor.NewDense(2, 2)
		src.Fill(3)
		dst := []*tensor.Dense{src, tensor.NewDense(2, 2)}
		cg.Broadcast(0, src, dst, "bcast h", 0)
		err := g.Execute(1)
		return dst[1].Data, err
	}

	policy := comm.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Multiplier: 2}
	want, err := runBroadcast(nil, policy)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	// Failures below the budget: retried away, bit-identical result.
	in := New(Plan{Seed: 7, Transient: &TransientSpec{Every: 1, Failures: 2}})
	got, err := runBroadcast(in, policy)
	if err != nil {
		t.Fatalf("retried run failed: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retried run diverged at %d: %v vs %v", i, got, want)
		}
	}
	if in.Stats().TransientFailures != 2 {
		t.Fatalf("TransientFailures = %d, want 2", in.Stats().TransientFailures)
	}

	// Failures at the budget: the collective gives up.
	in2 := New(Plan{Seed: 7, Transient: &TransientSpec{Every: 1, Failures: 4}})
	_, err = runBroadcast(in2, policy)
	var give *comm.GiveUpError
	if !errors.As(err, &give) || give.Attempts != 4 {
		t.Fatalf("exhausted run = %v, want GiveUpError after 4 attempts", err)
	}
}

// streamFixture records one compute task and one sampler-stream task per
// label pair on device 0 — the minimal graph for pinning structured
// matching.
func streamFixture(in *Injector) (g *sim.Graph, ran *[]string) {
	g = sim.NewGraph(sim.DGXV100(), 1)
	g.Fault = in
	ran = new([]string)
	c := g.AddCompute(0, sim.KindGeMM, "s0/work", -1, 1, false)
	g.Bind(c, func() { *ran = append(*ran, "compute") })
	s := g.AddStage(0, sim.StreamSample, sim.KindSample, "s0/work", -1, 1, true)
	g.Bind(s, func() { *ran = append(*ran, "sample") })
	return g, ran
}

// TestStructuredMatchScopesToStream pins the structured task filter: a
// crash scoped to StreamSample must ignore an identically-labeled compute
// task — the exact confusion the old substring-only matching could not
// avoid.
func TestStructuredMatchScopesToStream(t *testing.T) {
	in := New(Plan{Crash: &CrashSpec{Device: 0, OnLabel: "work", Stream: OnStream(sim.StreamSample)}})
	g, ran := streamFixture(in)
	err := g.Execute(1)
	var lost *sim.DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("Execute = %v, want DeviceLostError via the sampler-stream task", err)
	}
	for _, r := range *ran {
		if r == "sample" {
			t.Fatal("the stream-scoped crash target still executed")
		}
	}

	// Kind scoping composes the same way: a KindExtract selector matches
	// neither task, so the run is fault-free.
	in2 := New(Plan{Crash: &CrashSpec{Device: 0, OnLabel: "work", Kind: OnKind(sim.KindExtract)}})
	g2, ran2 := streamFixture(in2)
	if err := g2.Execute(1); err != nil {
		t.Fatalf("kind-mismatched crash fired anyway: %v", err)
	}
	if len(*ran2) != 2 {
		t.Fatalf("ran %v, want both tasks untouched", *ran2)
	}
}

// TestStragglerStreamScope: a sampler-scoped straggler counts only
// sampler-stream tasks toward its Every cadence.
func TestStragglerStreamScope(t *testing.T) {
	in := New(Plan{Straggler: &StragglerSpec{
		Device: 0, Delay: time.Microsecond, Every: 1, Stream: OnStream(sim.StreamSample),
	}})
	g, _ := streamFixture(in)
	if err := g.Execute(1); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := in.Stats().Delays; got != 1 {
		t.Fatalf("stats.Delays = %d, want 1 (only the sampler-stream task)", got)
	}
}

// TestTransientTaskFailsThenReplays pins the flaky-task seam: the first
// Failures executions of the matching task fail with a transient task
// error, and a re-recorded graph (the elastic replay) runs clean — the
// budget is global across graphs, never per task ID.
func TestTransientTaskFailsThenReplays(t *testing.T) {
	in := New(Plan{TransientTask: &TransientTaskSpec{
		Device: 0, OnLabel: "s0/work", Failures: 1, Stream: OnStream(sim.StreamSample),
	}})
	g, ran := streamFixture(in)
	err := g.Execute(1)
	var tte *sim.TransientTaskError
	if !errors.As(err, &tte) || tte.Device != 0 {
		t.Fatalf("Execute = %v, want TransientTaskError{Device: 0}", err)
	}
	var te *sim.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("Execute = %v, want the executor's *sim.TaskError wrapping", err)
	}
	for _, r := range *ran {
		if r == "sample" {
			t.Fatal("transiently failed task still ran its closure")
		}
	}
	// The re-run: budget consumed, both tasks execute.
	g2, ran2 := streamFixture(in)
	if err := g2.Execute(1); err != nil {
		t.Fatalf("replay after transient task failure: %v", err)
	}
	if len(*ran2) != 2 {
		t.Fatalf("replay ran %v, want both tasks", *ran2)
	}
	if got := in.Stats().TaskFailures; got != 1 {
		t.Fatalf("stats.TaskFailures = %d, want 1", got)
	}
}

// TestObserveRemovalRetiresTransient pins the suspect-eviction rule: after
// the elastic path evicts a device over exhausted collectives, the
// acknowledged removal retires the collective-transient spec so the
// survivors' re-run is fault-free.
func TestObserveRemovalRetiresTransient(t *testing.T) {
	in := New(Plan{Seed: 7, Transient: &TransientSpec{Every: 1, Failures: 100}})
	if in.CollectiveAttempt(0, "c", 1) == nil {
		t.Fatal("Every=1 transient spec passed an attempt")
	}
	in.ObserveRemoval(3)
	if err := in.CollectiveAttempt(0, "c", 2); err != nil {
		t.Fatalf("transient spec survived ObserveRemoval: %v", err)
	}
}

func TestTransientSelectionIsSeedDeterministic(t *testing.T) {
	pick := func(seed int64) []bool {
		in := New(Plan{Seed: seed, Transient: &TransientSpec{Every: 3, Failures: 1}})
		var hits []bool
		for id := 0; id < 64; id++ {
			hits = append(hits, in.CollectiveAttempt(id, "c", 1) != nil)
		}
		return hits
	}
	a, b := pick(42), pick(42)
	anyHit := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed selected different collectives at task %d", i)
		}
		anyHit = anyHit || a[i]
	}
	if !anyHit {
		t.Fatal("Every=3 over 64 tasks selected nothing")
	}
	c := pick(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical selections (hash ignores seed)")
	}
}
