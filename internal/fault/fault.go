// Package fault is the deterministic, seeded fault injector for MG-GCN's
// task-graph execution. The full-batch pipeline of §4.1-4.3 assumes every
// device and every broadcast succeeds; at production scale partial failure
// is the common case, and the recovery machinery (internal/comm retries,
// internal/core elastic training) is only trustworthy if its failure paths
// are exercised on purpose. An Injector plugs into both failure seams:
//
//   - as a sim.FaultHook on the task graph it can crash a device
//     permanently mid-epoch (BeforeTask fails with *sim.DeviceLostError),
//     delay a device's tasks (straggler), and poison a task's declared
//     output buffers with NaNs (AfterTask);
//   - as a comm.CollectiveGate it fails individual collective attempts
//     transiently, driving the retry/backoff loop.
//
// Every decision is a pure function of the plan's seed and record-time
// identifiers (task IDs, labels, devices) — never of replay interleaving or
// wall time — so a faulted run is reproducible at any executor worker
// count, and runs whose transient faults are all retried successfully stay
// bit-identical to fault-free runs.
package fault

import (
	"fmt"
	"math"
	"sync"
	"time"

	"mggcn/internal/comm"
	"mggcn/internal/sim"
)

// OnStream scopes a spec to tasks recorded on one stream — the structured
// alternative to label substrings (a pointer because StreamCompute is the
// zero StreamID; nil means "any stream").
func OnStream(s sim.StreamID) *sim.StreamID { return &s }

// OnKind scopes a spec to tasks of one kind (nil means "any kind").
func OnKind(k sim.Kind) *sim.Kind { return &k }

// matchStreamKind is the structured half of every spec's task filter: a nil
// selector matches anything, a non-nil one must equal the task's recorded
// stream/kind. Structured fields compose with the label fallback — a spec
// matches when every selector it sets matches.
func matchStreamKind(t *sim.Task, stream *sim.StreamID, kind *sim.Kind) bool {
	if stream != nil && t.Stream != *stream {
		return false
	}
	if kind != nil && t.Kind != *kind {
		return false
	}
	return true
}

// CrashSpec kills one device permanently: the first task on Device matching
// the spec's filters — label substring OnLabel ("" matches any), plus the
// optional structured Stream/Kind selectors — after skipping the first
// After matches, fails with *sim.DeviceLostError instead of running. From
// then on every task on that device fails the same way until the machinery
// that removed the device acknowledges the loss (Injector.ObserveRemoval) —
// a crashed GPU does not come back, and renumbered survivor graphs must not
// inherit the dead index.
type CrashSpec struct {
	Device  int
	OnLabel string
	After   int
	Stream  *sim.StreamID
	Kind    *sim.Kind
}

// TransientSpec fails collective attempts transiently: a collective task is
// selected when hash(seed, taskID) % Every == 0 (Every <= 1 selects all),
// and its first Failures attempts fail with a comm.Transient error before
// attempts pass. With Failures < the group's retry budget every failure is
// retried away and the run is bit-identical to fault-free; with Failures >=
// the budget the collective gives up and the epoch aborts.
type TransientSpec struct {
	Every    int
	Failures int
}

// StragglerSpec delays every Every-th matching bound task on Device by
// Delay before its closure runs (Every <= 1 delays all) — the slow-device
// scenario. The optional Stream/Kind selectors narrow which tasks count
// (e.g. only the sampler stream). Pure latency: results must stay
// bit-identical.
type StragglerSpec struct {
	Device int
	Delay  time.Duration
	Every  int
	Stream *sim.StreamID
	Kind   *sim.Kind
}

// PoisonSpec overwrites the declared output buffers of one task with NaNs
// after it completes: the Occurrence-th (1-based; 0 means first) completed
// task matching Label exactly, Stage, Device, and the optional Stream/Kind
// selectors — silent data corruption the numeric guards must catch.
type PoisonSpec struct {
	Label      string
	Stage      int
	Device     int
	Occurrence int
	Stream     *sim.StreamID
	Kind       *sim.Kind
}

// TransientTaskSpec fails individual bound tasks transiently — the
// task-level analogue of TransientSpec for stages with no in-closure retry
// loop, like the sampler stream. The first Failures executions of tasks
// matching the filter (Device, label substring OnLabel, optional
// Stream/Kind) fail with *sim.TransientTaskError before any execution
// passes; the counter is global across graphs, so an elastic re-run of the
// voided work finds the fault gone and replays bit-identically. Scope the
// filter to a single task (label + device) when a deterministic recovery
// count matters: with several matching tasks racing in one replay, which
// one consumes the budget depends on executor interleaving.
type TransientTaskSpec struct {
	Device   int // -1 matches any device
	OnLabel  string
	Failures int
	Stream   *sim.StreamID
	Kind     *sim.Kind
}

// Plan is one seeded fault scenario. Nil specs inject nothing of that kind.
type Plan struct {
	Seed          int64
	Crash         *CrashSpec
	Transient     *TransientSpec
	Straggler     *StragglerSpec
	Poison        *PoisonSpec
	TransientTask *TransientTaskSpec
}

// Stats counts what the injector actually did — the chaos harness reports
// them next to each scenario's outcome.
type Stats struct {
	Crashes           int // permanent device-loss errors returned
	TransientFailures int // collective attempts failed transiently
	Delays            int // straggler sleeps injected
	Poisons           int // buffers NaN-poisoned
	TaskFailures      int // task executions failed transiently
}

// Injector injects one Plan into a run. It implements sim.FaultHook and
// comm.CollectiveGate; wire the same instance into both seams (the trainer
// does this when Config.Fault is set). Safe for concurrent use — the
// executor calls it from parallel workers.
type Injector struct {
	plan Plan

	mu         sync.Mutex
	crashed    bool // crash fired; device stays dead until ObserveRemoval
	crashSeen  int  // matching tasks observed before the crash fires
	lateSeen   int  // straggler-device tasks observed
	poisonSeen int  // poison-matching tasks observed
	taskFails  int  // transient task failures injected so far
	stats      Stats
}

// interface conformance
var (
	_ sim.FaultHook       = (*Injector)(nil)
	_ comm.CollectiveGate = (*Injector)(nil)
)

// New builds an injector for the plan.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

// Plan returns the injector's scenario.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// ObserveRemoval acknowledges that a device was removed from the machine
// (the elastic trainer repartitioned over the survivors). Two specs retire:
//
//   - the crash latch stops matching the now-recycled device index (the
//     crash spec stays spent — one plan kills at most one device);
//   - a collective-transient spec retires unconditionally: the elastic
//     suspect-eviction rule attributes exhausted collectives to the removed
//     device (a flaky link rides with its endpoint), so once the suspect is
//     out of the group the injection stops and the survivors' re-run is
//     fault-free.
func (in *Injector) ObserveRemoval(device int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed && in.plan.Crash != nil && in.plan.Crash.Device == device {
		in.plan.Crash = nil
	}
	in.plan.Transient = nil
}

// onDevice reports whether t runs on dev.
func onDevice(t *sim.Task, dev int) bool {
	for _, d := range t.Devices {
		if d == dev {
			return true
		}
	}
	return false
}

// BeforeTask implements sim.FaultHook: the crash, transient-task, and
// straggler seams.
func (in *Injector) BeforeTask(g *sim.Graph, t *sim.Task) error {
	var delay time.Duration
	in.mu.Lock()
	if c := in.plan.Crash; c != nil && onDevice(t, c.Device) {
		if in.crashed {
			in.stats.Crashes++
			in.mu.Unlock()
			return &sim.DeviceLostError{Device: c.Device}
		}
		if (c.OnLabel == "" || contains(t.Label, c.OnLabel)) && matchStreamKind(t, c.Stream, c.Kind) {
			in.crashSeen++
			if in.crashSeen > c.After {
				in.crashed = true
				in.stats.Crashes++
				in.mu.Unlock()
				return &sim.DeviceLostError{Device: c.Device}
			}
		}
	}
	if ts := in.plan.TransientTask; ts != nil && in.taskFails < ts.Failures &&
		(ts.Device < 0 || onDevice(t, ts.Device)) &&
		(ts.OnLabel == "" || contains(t.Label, ts.OnLabel)) &&
		matchStreamKind(t, ts.Stream, ts.Kind) {
		in.taskFails++
		in.stats.TaskFailures++
		dev := ts.Device
		if dev < 0 && len(t.Devices) > 0 {
			dev = t.Devices[0]
		}
		in.mu.Unlock()
		return &sim.TransientTaskError{Device: dev, Label: t.Label}
	}
	if s := in.plan.Straggler; s != nil && onDevice(t, s.Device) && matchStreamKind(t, s.Stream, s.Kind) {
		in.lateSeen++
		every := s.Every
		if every < 1 {
			every = 1
		}
		if in.lateSeen%every == 0 {
			delay = s.Delay
			in.stats.Delays++
		}
	}
	in.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// AfterTask implements sim.FaultHook: the NaN-poison seam. The poisoned
// buffers are the task's *declared* writes resolved through the graph's
// registry — corruption lands exactly where the task claims to write, so
// the sanitizer's access-set story stays coherent even under injection.
func (in *Injector) AfterTask(g *sim.Graph, t *sim.Task) error {
	p := in.plan.Poison
	if p == nil || t.Label != p.Label || t.Stage != p.Stage || !onDevice(t, p.Device) ||
		!matchStreamKind(t, p.Stream, p.Kind) {
		return nil
	}
	in.mu.Lock()
	in.poisonSeen++
	occ := p.Occurrence
	if occ < 1 {
		occ = 1
	}
	fire := in.poisonSeen == occ
	if fire {
		in.stats.Poisons++
	}
	in.mu.Unlock()
	if !fire {
		return nil
	}
	if g.Reg == nil {
		return fmt.Errorf("fault: poison of task %q needs a buffer registry on the graph", t.Label)
	}
	nan := float32(math.NaN())
	for _, id := range t.Writes {
		data := g.Reg.Data(id)
		for i := range data {
			data[i] = nan
		}
	}
	return nil
}

// CollectiveAttempt implements comm.CollectiveGate: the transient seam.
// Selection hashes the record-time task ID with the seed, so the same
// collectives fail in every epoch and at every executor parallelism.
func (in *Injector) CollectiveAttempt(taskID int, label string, attempt int) error {
	ts := in.plan.Transient
	if ts == nil || ts.Failures < 1 {
		return nil
	}
	every := ts.Every
	if every < 1 {
		every = 1
	}
	if mix(in.plan.Seed, uint64(taskID))%uint64(every) != 0 {
		return nil
	}
	if attempt > ts.Failures {
		return nil
	}
	in.mu.Lock()
	in.stats.TransientFailures++
	in.mu.Unlock()
	return comm.Transient(fmt.Errorf("fault: injected failure of %s (task %d, attempt %d)", label, taskID, attempt))
}

// mix is splitmix64 over the seed/ID pair — a cheap, well-distributed
// deterministic selector.
func mix(seed int64, x uint64) uint64 {
	z := uint64(seed) ^ (x * 0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// contains is strings.Contains without the import.
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
