// Package mggcn is a Go reproduction of "MG-GCN: A Scalable multi-GPU GCN
// Training Framework" (Balın, Sancak, Çatalyürek — ICPP 2022): full-batch
// GCN training 1D-row-partitioned across the GPUs of a simulated DGX-class
// machine, with the paper's memory-buffer reuse (§4.2), communication/
// computation overlap (§4.3), kernel order switching and saved backward
// SpMM (§4.4), and random-permutation load balancing (§5.2).
//
// Because this module is pure Go and offline, GPUs, NVLink and the OGB
// datasets are replaced by faithful stand-ins (see DESIGN.md §2): kernels
// execute real float32 math on the CPU while a discrete-event scheduler
// with bandwidth contention prices every kernel and collective at
// paper-scale, and datasets are BTER-generated to Table 1's shape. Epoch
// times reported by this package are simulated seconds on the selected
// machine; losses and accuracies are real.
//
// Quick start:
//
//	ds, _ := mggcn.LoadDataset("reddit", false)
//	tr, _ := mggcn.NewTrainer(ds, mggcn.DefaultOptions(mggcn.DGXA100(), 8))
//	stats, _ := tr.Train(100)
//	for _, s := range stats {
//	    fmt.Println(s.Loss, s.TrainAcc, s.EpochSeconds)
//	}
package mggcn

import (
	"errors"
	"fmt"
	"io"

	"mggcn/internal/core"
	"mggcn/internal/gen"
	"mggcn/internal/graph"
	"mggcn/internal/graphio"
	"mggcn/internal/sim"
	"mggcn/internal/trace"
)

// MachineSpec describes a multi-GPU node; build one with DGXV100 or
// DGXA100, or customize the fields for a hypothetical machine.
type MachineSpec = sim.MachineSpec

// DGXV100 returns the paper's NVIDIA DGX-1 (8x V100 32 GB, 6 NVLinks/GPU).
func DGXV100() MachineSpec { return sim.DGXV100() }

// DGXA100 returns the paper's NVIDIA DGX-A100 (8x A100 80 GB, NVSwitch).
func DGXA100() MachineSpec { return sim.DGXA100() }

// MultiNode joins nodes identical machines through a network delivering
// interNodeBW bytes/s per node (e.g. 12.5e9 for HDR InfiniBand).
// Collectives that span nodes are bottlenecked by the NIC — the scaling
// wall that kept CAGNET at a single node and that the paper's multi-GPU
// cluster extension (§7, future work) would have to overcome.
func MultiNode(spec MachineSpec, nodes int, interNodeBW float64) MachineSpec {
	return sim.MultiNode(spec, nodes, interNodeBW)
}

// EpochStats reports one training epoch: simulated epoch seconds on the
// machine, the per-kind time breakdown, and (in non-phantom mode) the real
// loss and training accuracy.
type EpochStats = core.EpochStats

// Strategy selects the distributed SpMM algorithm of §4.1/§5.1.
type Strategy = core.Strategy

// The available partitioning strategies.
const (
	Strategy1DRow = core.Strategy1DRow // broadcast-based (the paper's)
	Strategy1DCol = core.Strategy1DCol // reduction-based alternative
	Strategy15D   = core.Strategy15D   // CAGNET 1.5D, replication 2
)

// Ordering selects the vertex ordering applied before partitioning.
type Ordering = core.Ordering

// SparseFormat selects the device-resident sparse tile layout.
type SparseFormat = core.SparseFormat

// Sparse tile formats for Options.SparseFormat.
const (
	FormatCSR  = core.FormatCSR  // CSR everywhere (default)
	FormatSELL = core.FormatSELL // SELL-C-σ everywhere
	FormatAuto = core.FormatAuto // per-tile: SELL where the skew pays
)

// The available vertex orderings (§5.2 ablation). OrderingDefault honors
// the Permute flag.
const (
	OrderingDefault      = core.OrderingDefault
	OrderingNatural      = core.OrderingNatural
	OrderingRandom       = core.OrderingRandom
	OrderingDegreeSorted = core.OrderingDegreeSorted
	OrderingBFS          = core.OrderingBFS
	OrderingBlockCyclic  = core.OrderingBlockCyclic
)

// Dataset is a benchmark graph bound to its full-scale statistics and the
// generation scale divisor (DESIGN.md §2).
type Dataset struct {
	g     *graph.Graph
	scale int
	spec  gen.DatasetSpec
}

// DatasetNames lists the Table-1 catalog names.
func DatasetNames() []string { return gen.AllNames() }

// LoadDataset generates (with caching) a catalog dataset. Phantom datasets
// carry graph structure only — enough for timing and memory experiments —
// and are the only practical choice for the large graphs; non-phantom
// datasets include features, labels and splits for real training.
func LoadDataset(name string, phantom bool) (*Dataset, error) {
	g, spec, err := gen.Load(name, phantom)
	if err != nil {
		return nil, err
	}
	return &Dataset{g: g, scale: spec.Scale, spec: spec}, nil
}

// DegreeScaledDataset returns the Fig-9 synthetic family member: the Arxiv
// degree profile with average degree multiplied by factor at fixed n.
func DegreeScaledDataset(factor int, phantom bool) *Dataset {
	g, spec := gen.LoadDegreeScaled(factor, phantom)
	return &Dataset{g: g, scale: spec.Scale, spec: spec}
}

// SynthesizeDataset generates a custom BTER dataset at scale 1.
func SynthesizeDataset(name string, n int, avgDegree float64, featDim, classes int, seed uint64, phantom bool) *Dataset {
	cfg := gen.DefaultBTER(n, avgDegree, seed)
	g := gen.Generate(name, cfg, featDim, classes, phantom)
	return &Dataset{
		g: g, scale: 1,
		spec: gen.DatasetSpec{
			Name: name, FullN: int64(n), FullM: g.M(),
			FeatDim: featDim, Classes: classes, AvgDegree: avgDegree, Scale: 1, Seed: seed,
		},
	}
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.g.Name }

// N returns the generated vertex count; FullN the paper-scale count.
func (d *Dataset) N() int { return d.g.N() }

// FullN returns the paper-scale vertex count (N times the scale divisor).
func (d *Dataset) FullN() int64 { return int64(d.g.N()) * int64(d.scale) }

// M returns the generated directed edge count.
func (d *Dataset) M() int64 { return d.g.M() }

// AvgDegree returns edges per vertex (preserved across scaling).
func (d *Dataset) AvgDegree() float64 { return d.g.AvgDegree() }

// Scale returns the generation divisor relative to the paper's dataset.
func (d *Dataset) Scale() int { return d.scale }

// FeatDim and Classes return the model-facing dimensions.
func (d *Dataset) FeatDim() int { return d.g.FeatDim }

// Classes returns the label count.
func (d *Dataset) Classes() int { return d.g.Classes }

// IsPhantom reports whether the dataset is structure-only.
func (d *Dataset) IsPhantom() bool { return d.g.IsPhantom() }

// WriteBinary serializes the dataset (structure, features, labels, splits)
// to w in the module's binary format.
func (d *Dataset) WriteBinary(w io.Writer) error { return graphio.WriteBinary(w, d.g) }

// ReadDataset deserializes a dataset written by WriteBinary. The scale
// divisor is not stored in the format; pass the one the dataset was
// generated with (1 for unscaled data).
func ReadDataset(r io.Reader, scale int) (*Dataset, error) {
	g, err := graphio.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	if scale < 1 {
		scale = 1
	}
	return &Dataset{
		g: g, scale: scale,
		spec: gen.DatasetSpec{
			Name: g.Name, FullN: int64(g.N()) * int64(scale),
			FullM: g.M() * int64(scale), FeatDim: g.FeatDim, Classes: g.Classes,
			AvgDegree: g.AvgDegree(), Scale: scale,
		},
	}, nil
}

// Options configures a training run. Zero values are not usable; start
// from DefaultOptions.
type Options struct {
	Machine MachineSpec
	GPUs    int

	Hidden int
	Layers int
	LR     float64

	// Strategy selects the distributed SpMM algorithm: Strategy1DRow (the
	// paper's choice, the default), Strategy1DCol, or Strategy15D.
	Strategy Strategy

	// The paper's optimizations, all enabled by DefaultOptions.
	Permute               bool // §5.2 random vertex permutation
	Overlap               bool // §4.3 communication/computation overlap
	OrderSwitch           bool // §4.4 GeMM/SpMM order selection
	SkipFirstBackwardSpMM bool // §4.4 saved first-layer backward SpMM

	// Ordering overrides Permute with a specific vertex ordering when set.
	Ordering Ordering
	// SparseFormat selects the device-resident adjacency tile layout:
	// FormatCSR (default), FormatSELL, or FormatAuto (per-tile heuristic —
	// hub-heavy shards convert to SELL-C-σ, uniform shards stay CSR).
	// Results are bit-identical at any setting; only speed and the
	// adjacency memory charge change.
	SparseFormat SparseFormat
	// BalancedPartition cuts partitions at equal total degree instead of
	// equal vertex counts — an alternative load balancer to permutation.
	BalancedPartition bool

	Seed     int64
	PermSeed uint64

	// Workers caps how many shared-pool lanes one Parallel* kernel call may
	// occupy (<=0: GOMAXPROCS). All kernels and the epoch executor draw
	// from one process-wide pool (internal/pool), so this is a per-call cap
	// on a shared budget, not a goroutine count: concurrent kernels split
	// the machine, and idle lanes are stolen by whichever kernel has chunks
	// left. See DESIGN.md §5.2 for tuning it against ExecWorkers.
	Workers int

	// ExecWorkers is how many recorded task closures the epoch executor may
	// replay concurrently (<=0: GOMAXPROCS; 1: serial issue). Independent
	// tasks — different devices, comm vs compute — run in parallel on the
	// shared pool, mirroring the multi-GPU concurrency the simulator
	// prices. Results are bit-identical at any setting.
	ExecWorkers int
}

// DefaultOptions returns the full MG-GCN configuration on the machine:
// model A of §6 (2 layers, hidden 512) with every optimization enabled.
func DefaultOptions(m MachineSpec, gpus int) Options {
	return Options{
		Machine: m, GPUs: gpus,
		Hidden: 512, Layers: 2, LR: 0.01,
		Permute: true, Overlap: true, OrderSwitch: true, SkipFirstBackwardSpMM: true,
		Seed: 1, PermSeed: 1,
	}
}

// Trainer is a distributed MG-GCN training run.
type Trainer struct {
	inner *core.Trainer
	ds    *Dataset
}

// NewTrainer partitions the dataset across the machine's GPUs and
// allocates the L+3 buffer set; it fails with an out-of-memory error
// (check with IsOOM) when the configuration does not fit the machine.
func NewTrainer(ds *Dataset, o Options) (*Trainer, error) {
	if o.GPUs < 1 {
		return nil, fmt.Errorf("mggcn: GPUs must be >= 1")
	}
	cfg := core.Config{
		Spec: o.Machine, P: o.GPUs, MemScale: ds.scale,
		Hidden: o.Hidden, Layers: o.Layers, LR: o.LR,
		Strategy: o.Strategy, Ordering: o.Ordering, BalancedPartition: o.BalancedPartition,
		Permute: o.Permute, PermSeed: o.PermSeed, Overlap: o.Overlap,
		OrderSwitch: o.OrderSwitch, SkipFirstBackward: o.SkipFirstBackwardSpMM,
		Format: o.SparseFormat,
		Seed:   o.Seed, Workers: o.Workers, ExecWorkers: o.ExecWorkers,
	}
	inner, err := core.NewTrainer(ds.g, cfg)
	if err != nil {
		return nil, err
	}
	return &Trainer{inner: inner, ds: ds}, nil
}

// RunEpoch performs one full-batch training step. A non-nil error means
// the epoch did not complete (a failed task or numeric corruption) and the
// model state is suspect.
func (t *Trainer) RunEpoch() (*EpochStats, error) { return t.inner.RunEpoch() }

// Train runs the given number of epochs and returns per-epoch stats. The
// first epoch failure stops the run, returning the completed epochs' stats
// alongside the error.
func (t *Trainer) Train(epochs int) ([]*EpochStats, error) { return t.inner.Train(epochs) }

// SaveCheckpoint writes the model weights and optimizer state to w so a
// later run can resume exactly where this one stopped.
func (t *Trainer) SaveCheckpoint(w io.Writer) error { return t.inner.SaveCheckpoint(w) }

// LoadCheckpoint restores state saved by SaveCheckpoint; the trainer's
// model shape must match the checkpoint's.
func (t *Trainer) LoadCheckpoint(r io.Reader) error { return t.inner.LoadCheckpoint(r) }

// PeakMemoryBytes returns the per-device peak memory at generated scale;
// multiply by Dataset.Scale() for the paper-scale figure.
func (t *Trainer) PeakMemoryBytes() int64 { return t.inner.PeakMemoryBytes() }

// BufferCount returns the number of large per-device buffers (L+3).
func (t *Trainer) BufferCount() int { return t.inner.BufferCount() }

// EstimateMemoryBytesPerDevice predicts the paper-scale per-device memory
// footprint of a configuration without building a trainer.
func EstimateMemoryBytesPerDevice(ds *Dataset, o Options) int64 {
	cfg := core.Config{
		Spec: o.Machine, P: o.GPUs, MemScale: ds.scale,
		Hidden: o.Hidden, Layers: o.Layers,
	}
	return core.EstimateMemoryBytesPerDevice(ds.g, cfg)
}

// SampledEpochStats reports one sampled-minibatch epoch: simulated epoch
// seconds, per-kind busy time, mean training loss over the epoch's
// batches, and the per-device stream overlap ratio (>1 means the sampler
// stream genuinely ran concurrently with training).
type SampledEpochStats = core.SampledEpochStats

// SampledOptions configures a sampled-minibatch training run (the
// factored sampler/trainer pipeline). Zero values are not usable; start
// from DefaultSampledOptions.
type SampledOptions struct {
	Machine MachineSpec
	GPUs    int

	Hidden int
	Layers int
	LR     float64

	// Batch is the number of target vertices per minibatch; batches are
	// dealt round-robin across the GPUs, so one step trains GPUs batches.
	Batch int
	// Fanouts[l] bounds layer l's neighbor sample, outermost first; its
	// length must equal Layers.
	Fanouts []int
	// CacheFrac is the fraction of vertices whose feature rows each device
	// caches in a degree-ordered static slab (hottest first); misses
	// gather from host memory over the host link. 0 disables caching.
	CacheFrac float64
	// Pipeline double-buffers the sampler→trainer handoff so sampling and
	// feature extraction for step s+1 overlap step s's training. Results
	// are bit-identical on or off; only the schedule changes.
	Pipeline bool

	Seed        int64
	Workers     int
	ExecWorkers int

	// TrackVal computes per-epoch validation accuracy with a host-side
	// sampled forward over the dataset's val mask — statistics only, never
	// part of the task graph or its determinism.
	TrackVal bool
	// EarlyStopPatience > 0 stops Train after that many consecutive epochs
	// without a validation-accuracy improvement (implies TrackVal).
	EarlyStopPatience int
}

// DefaultSampledOptions returns the GNNLab-style sampled configuration:
// 3 layers at fanout [5,10,15], hidden 128, batch 512, half the vertices
// cached, pipelining on.
func DefaultSampledOptions(m MachineSpec, gpus int) SampledOptions {
	return SampledOptions{
		Machine: m, GPUs: gpus,
		Hidden: 128, Layers: 3, LR: 0.01,
		Batch: 512, Fanouts: []int{5, 10, 15},
		CacheFrac: 0.5, Pipeline: true, Seed: 1,
	}
}

// SampledTrainer is a distributed sampled-minibatch training run: a
// sampler stage producing k-hop blocks feeds per-device trainer stages
// through a double-buffered handoff, with feature gathers served from
// degree-ordered per-device caches. Fixed seeds give bit-identical runs
// at any replay parallelism, exactly like the full-batch Trainer.
type SampledTrainer struct {
	inner *core.SampledTrainer
	ds    *Dataset
}

// NewSampledTrainer builds the replicated model and per-device feature
// caches. Sampling gathers real feature rows and labels, so phantom
// datasets are rejected.
func NewSampledTrainer(ds *Dataset, o SampledOptions) (*SampledTrainer, error) {
	if o.GPUs < 1 {
		return nil, fmt.Errorf("mggcn: GPUs must be >= 1")
	}
	cfg := core.SampledConfig{
		Spec: o.Machine, P: o.GPUs, MemScale: ds.scale,
		Hidden: o.Hidden, Layers: o.Layers, LR: o.LR,
		Batch: o.Batch, Fanouts: o.Fanouts,
		CacheFrac: o.CacheFrac, Pipeline: o.Pipeline,
		Seed: o.Seed, Workers: o.Workers, ExecWorkers: o.ExecWorkers,
		TrackVal: o.TrackVal, EarlyStopPatience: o.EarlyStopPatience,
	}
	inner, err := core.NewSampledTrainer(ds.g, cfg)
	if err != nil {
		return nil, err
	}
	return &SampledTrainer{inner: inner, ds: ds}, nil
}

// RunEpoch consumes one deterministic epoch plan — every training vertex
// appears in exactly one batch — and returns the epoch's statistics.
func (t *SampledTrainer) RunEpoch() (*SampledEpochStats, error) { return t.inner.RunEpoch() }

// Train runs the given number of sampled epochs; the first failure stops
// the run, returning the completed epochs' stats alongside the error.
func (t *SampledTrainer) Train(epochs int) ([]*SampledEpochStats, error) {
	return t.inner.Train(epochs)
}

// SaveCheckpoint writes the sampler cursor (seed, epoch, next batch) plus
// model and optimizer state to w; restoring it resumes mid-epoch
// bit-identically.
func (t *SampledTrainer) SaveCheckpoint(w io.Writer) error { return t.inner.SaveCheckpoint(w) }

// LoadCheckpoint restores state saved by SampledTrainer.SaveCheckpoint. The
// trainer's model shape and sampling seed must match the checkpoint's;
// full-batch checkpoints are rejected with a version error.
func (t *SampledTrainer) LoadCheckpoint(r io.Reader) error { return t.inner.LoadCheckpoint(r) }

// SaveCheckpointAtomic writes a checkpoint through save to a temp file next
// to path and renames it into place, so a crash mid-write leaves the
// previous checkpoint intact. Pass a Trainer's or SampledTrainer's
// SaveCheckpoint method as save.
func SaveCheckpointAtomic(path string, save func(w io.Writer) error) error {
	return core.SaveCheckpointAtomic(path, save)
}

// IsOOM reports whether err is a device out-of-memory failure.
func IsOOM(err error) bool {
	var oom *sim.OOMError
	return errors.As(err, &oom)
}

// Timeline runs one epoch on the dataset under the options and renders the
// ASCII Gantt chart of the tasks whose labels contain phase (e.g.
// "fwd0/spmm") — the paper's Fig 6/8 visualization for any configuration.
// Returns the chart text and the simulated epoch seconds.
func Timeline(ds *Dataset, o Options, phase string, width int) (string, float64, error) {
	tr, err := NewTrainer(ds, o)
	if err != nil {
		return "", 0, err
	}
	stats, err := tr.RunEpoch()
	if err != nil {
		return "", 0, err
	}
	spans := trace.Extract(stats.Tasks, stats.Sched, phase)
	return trace.Gantt(spans, o.GPUs, width), stats.EpochSeconds, nil
}
