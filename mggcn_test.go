package mggcn

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLoadDatasetAPI(t *testing.T) {
	ds, err := LoadDataset("cora", true)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "cora" || ds.N() <= 0 || ds.M() <= 0 {
		t.Fatalf("bad dataset: %+v", ds)
	}
	if !ds.IsPhantom() {
		t.Fatalf("phantom flag lost")
	}
	if ds.FullN() != int64(ds.N())*int64(ds.Scale()) {
		t.Fatalf("FullN inconsistent")
	}
	if _, err := LoadDataset("bogus", true); err == nil {
		t.Fatalf("expected error for unknown dataset")
	}
}

func TestSynthesizeDataset(t *testing.T) {
	ds := SynthesizeDataset("custom", 300, 5, 8, 3, 7, false)
	if ds.N() != 300 || ds.FeatDim() != 8 || ds.Classes() != 3 || ds.Scale() != 1 {
		t.Fatalf("synthesized dataset wrong: n=%d d=%d c=%d", ds.N(), ds.FeatDim(), ds.Classes())
	}
	if ds.IsPhantom() {
		t.Fatalf("requested real dataset")
	}
}

func TestTrainerEndToEnd(t *testing.T) {
	ds := SynthesizeDataset("e2e", 400, 10, 16, 4, 3, false)
	o := DefaultOptions(DGXA100(), 4)
	o.Hidden, o.Layers = 24, 2
	tr, err := NewTrainer(ds, o)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BufferCount() != o.Layers+3 {
		t.Fatalf("buffer count %d", tr.BufferCount())
	}
	stats := mustTrain(tr, 30)
	if len(stats) != 30 {
		t.Fatalf("epochs %d", len(stats))
	}
	last := stats[len(stats)-1]
	if last.TrainAcc < 0.6 {
		t.Fatalf("accuracy %v", last.TrainAcc)
	}
	if last.EpochSeconds <= 0 {
		t.Fatalf("epoch seconds %v", last.EpochSeconds)
	}
	if tr.PeakMemoryBytes() <= 0 {
		t.Fatalf("no memory accounted")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	ds := SynthesizeDataset("v", 100, 4, 8, 2, 5, true)
	o := DefaultOptions(DGXA100(), 0)
	if _, err := NewTrainer(ds, o); err == nil {
		t.Fatalf("GPUs=0 accepted")
	}
}

func TestIsOOM(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale papers load: long e2e, skipped in -short")
	}
	// A full-scale Papers run on one A100 must OOM, like the paper's Table 3.
	ds, err := LoadDataset("papers", true)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(DGXA100(), 1)
	o.Hidden, o.Layers = 208, 3
	_, err = NewTrainer(ds, o)
	if !IsOOM(err) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if IsOOM(nil) {
		t.Fatalf("nil is not OOM")
	}
	// Eight GPUs must fit (the paper's 2.89 s cell).
	o.GPUs = 8
	if _, err := NewTrainer(ds, o); err != nil {
		t.Fatalf("papers on 8 GPUs should fit: %v", err)
	}
}

func TestEstimateMemoryMatchesTrainer(t *testing.T) {
	if testing.Short() {
		t.Skip("phantom reddit build: simulator-only, skipped in -short")
	}
	ds, err := LoadDataset("reddit", true)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(DGXV100(), 4)
	tr, err := NewTrainer(ds, o)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateMemoryBytesPerDevice(ds, o)
	actualFull := tr.PeakMemoryBytes() * int64(ds.Scale())
	ratio := float64(est) / float64(actualFull)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("estimate %d vs actual(full-scale) %d (ratio %.2f)", est, actualFull, ratio)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope"); err == nil {
		t.Fatalf("expected error")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "table2", "table3", "sec51", "accuracy",
		"strategies", "ordering", "explosion", "gat", "multinode", "whatif"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("experiment %d is %q, want %q", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].Run == nil {
			t.Fatalf("experiment %q incomplete", id)
		}
	}
}

func TestTable1Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full Table-1 catalog: long e2e, skipped in -short")
	}
	res, err := RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cora", "arxiv", "products", "proteins", "reddit", "papers"} {
		if !strings.Contains(res.Text, name) {
			t.Fatalf("table1 missing %s:\n%s", name, res.Text)
		}
		k, kp := res.Values[name+"/k"], res.Values[name+"/k_paper"]
		if k < kp*0.5 || k > kp*1.8 {
			t.Fatalf("%s generated degree %v, paper %v", name, k, kp)
		}
	}
}

func TestSec51Experiment(t *testing.T) {
	res, err := RunExperiment("sec51")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values["DGX-V100/ratio"]-1.5) > 0.01 {
		t.Fatalf("V100 ratio %v", res.Values["DGX-V100/ratio"])
	}
	if math.Abs(res.Values["DGX-A100/ratio"]-0.75) > 0.01 {
		t.Fatalf("A100 ratio %v", res.Values["DGX-A100/ratio"])
	}
}

func TestFig6Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("phantom products timelines: simulator-only, skipped in -short")
	}
	res, err := RunExperiment("fig6")
	if err != nil {
		t.Fatal(err)
	}
	// Permutation must reduce both the epoch time and the compute-busy
	// imbalance across GPUs (the paper's 50 ms -> 38 ms contrast).
	if res.Values["permuted/epoch"] >= res.Values["original/epoch"] {
		t.Fatalf("permuted epoch %v not faster than original %v",
			res.Values["permuted/epoch"], res.Values["original/epoch"])
	}
	if !strings.Contains(res.Text, "GPU 4 comp") {
		t.Fatalf("timeline missing GPU rows:\n%s", res.Text)
	}
}

func TestFig8Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("phantom products timelines: simulator-only, skipped in -short")
	}
	res, err := RunExperiment("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["overlap/epoch"] >= res.Values["no-overlap/epoch"] {
		t.Fatalf("overlap %v not faster than no-overlap %v",
			res.Values["overlap/epoch"], res.Values["no-overlap/epoch"])
	}
}

func TestFig12Experiment(t *testing.T) {
	res, err := RunExperiment("fig12")
	if err != nil {
		t.Fatal(err)
	}
	// Paper's 30 GiB readings: DGL ~20, MG-GCN ~50 (1 GPU); CAGNET ~150,
	// MG-GCN ~450 (8 GPUs). Accept a generous band, but the ordering and
	// rough magnitudes must hold.
	checks := []struct {
		key    string
		lo, hi float64
	}{
		{"30/dgl1", 14, 30},
		{"30/mg1", 40, 75},
		{"30/cagnet8", 110, 230},
		{"30/mg8", 350, 650},
	}
	for _, c := range checks {
		v := res.Values[c.key]
		if v < c.lo || v > c.hi {
			t.Fatalf("%s = %v outside [%v, %v]\n%s", c.key, v, c.lo, c.hi, res.Text)
		}
	}
	if res.Values["30/mg1"] <= res.Values["30/dgl1"] || res.Values["30/mg8"] <= res.Values["30/cagnet8"] {
		t.Fatalf("MG-GCN must fit more layers than the baselines")
	}
}

func TestAccuracyExperiment(t *testing.T) {
	res, err := RunExperiment("accuracy")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8} {
		key := map[int]string{2: "2/max_loss_diff", 4: "4/max_loss_diff", 8: "8/max_loss_diff"}[p]
		if res.Values[key] > 0.05 {
			t.Fatalf("P=%d loss curve diverges from single-device by %v", p, res.Values[key])
		}
	}
	if res.Values["1/acc"] < 0.7 {
		t.Fatalf("reference accuracy %v too low", res.Values["1/acc"])
	}
	// The GCN must beat the graph-blind MLP on held-out vertices (§2's
	// motivation).
	if res.Values["1/test_acc"] <= res.Values["mlp/test_acc"] {
		t.Fatalf("GCN (%v) did not beat MLP (%v) on test vertices",
			res.Values["1/test_acc"], res.Values["mlp/test_acc"])
	}
}

func TestDatasetBinaryRoundTripPublicAPI(t *testing.T) {
	ds := SynthesizeDataset("io-rt", 200, 6, 8, 3, 11, false)
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.M() != ds.M() || back.Name() != "io-rt" {
		t.Fatalf("round trip lost data: n=%d m=%d", back.N(), back.M())
	}
	// The reloaded dataset must be trainable with identical results.
	o := DefaultOptions(DGXA100(), 2)
	o.Hidden = 16
	tr1, err := NewTrainer(ds, o)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := NewTrainer(back, o)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := mustEpoch(tr1).Loss, mustEpoch(tr2).Loss
	if l1 != l2 {
		t.Fatalf("reloaded dataset trains differently: %v vs %v", l1, l2)
	}
}

func TestCheckpointPublicAPI(t *testing.T) {
	ds := SynthesizeDataset("ckpt", 200, 6, 8, 3, 12, false)
	o := DefaultOptions(DGXA100(), 2)
	o.Hidden = 16
	tr, err := NewTrainer(ds, o)
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(tr, 3)
	var buf bytes.Buffer
	if err := tr.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := NewTrainer(ds, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if a, b := mustEpoch(tr).Loss, mustEpoch(tr2).Loss; a != b {
		t.Fatalf("restored trainer diverges: %v vs %v", a, b)
	}
}

func TestTimelinePublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("phantom products timeline: simulator-only, skipped in -short")
	}
	ds, err := LoadDataset("products", true)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(DGXV100(), 4)
	chart, epoch, err := Timeline(ds, o, "fwd0/spmm", 60)
	if err != nil {
		t.Fatal(err)
	}
	if epoch <= 0 {
		t.Fatalf("epoch %v", epoch)
	}
	if !strings.Contains(chart, "GPU 4 comp") || !strings.Contains(chart, "~") {
		t.Fatalf("chart missing rows:\n%s", chart)
	}
}

func TestMultiNodePublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("phantom reddit epochs: simulator-only, skipped in -short")
	}
	m := MultiNode(DGXV100(), 2, 12.5e9)
	if m.NumGPUs != 16 {
		t.Fatalf("NumGPUs=%d", m.NumGPUs)
	}
	ds, err := LoadDataset("reddit", true)
	if err != nil {
		t.Fatal(err)
	}
	tr8, err := NewTrainer(ds, DefaultOptions(m, 8))
	if err != nil {
		t.Fatal(err)
	}
	tr16, err := NewTrainer(ds, DefaultOptions(m, 16))
	if err != nil {
		t.Fatal(err)
	}
	e8, e16 := mustEpoch(tr8).EpochSeconds, mustEpoch(tr16).EpochSeconds
	if e16 < e8 {
		t.Fatalf("crossing the node boundary should not speed Reddit up: %g -> %g", e8, e16)
	}
}

func TestStrategiesPublicAPI(t *testing.T) {
	ds := SynthesizeDataset("strat-pub", 300, 8, 12, 3, 21, false)
	base := -1.0
	for _, s := range []Strategy{Strategy1DRow, Strategy1DCol, Strategy15D} {
		o := DefaultOptions(DGXA100(), 4)
		o.Hidden = 16
		o.Strategy = s
		tr, err := NewTrainer(ds, o)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		loss := mustEpoch(tr).Loss
		if base < 0 {
			base = loss
		} else if math.Abs(loss-base) > 1e-3 {
			t.Fatalf("%v first-epoch loss %v != %v", s, loss, base)
		}
	}
}

// TestAllExperimentsShapes runs the remaining experiment runners end to end
// and pins the shape claims EXPERIMENTS.md makes for each — the regression
// harness for the full reproduction. (table1/fig6/fig8/fig12/sec51/accuracy
// have their own dedicated tests above.)
func TestAllExperimentsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered experiment: long e2e, skipped in -short")
	}
	get := func(id string) *ExperimentResult {
		t.Helper()
		res, err := RunExperiment(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Text == "" {
			t.Fatalf("%s: empty report", id)
		}
		return res
	}

	fig5 := get("fig5")
	if fig5.Values["reddit/1/SpMM"] < 50 {
		t.Errorf("fig5: reddit SpMM share %.1f%%, want dominance", fig5.Values["reddit/1/SpMM"])
	}
	if fig5.Values["proteins/1/oom"] != 1 || fig5.Values["proteins/2/oom"] != 1 {
		t.Errorf("fig5: proteins must OOM at 1-2 GPUs")
	}

	fig7 := get("fig7")
	if fig7.Values["products/8/perm"] < 1.2 {
		t.Errorf("fig7: products 8-GPU permutation speedup %.2f too small", fig7.Values["products/8/perm"])
	}
	if fig7.Values["products/8/perm+ovlp"] <= fig7.Values["products/8/perm"] {
		t.Errorf("fig7: overlap must add on top of permutation")
	}

	fig9 := get("fig9")
	if fig9.Values["128x/4"] <= 4 {
		t.Errorf("fig9: 4-GPU speedup at 128x is %.2f, want super-linear", fig9.Values["128x/4"])
	}
	if fig9.Values["1x/8"] >= fig9.Values["128x/8"] {
		t.Errorf("fig9: speedup must grow with density")
	}

	fig11 := get("fig11")
	for _, name := range []string{"cora", "arxiv", "products", "reddit"} {
		if s := fig11.Values[name+"/mggcn/1"]; s < 1.3 || s > 4.5 {
			t.Errorf("fig11: %s single-GPU speedup vs DGL %.2f outside the paper band", name, s)
		}
	}
	if fig11.Values["products/mggcn/8"] <= fig11.Values["products/cagnet/8"] {
		t.Errorf("fig11: MG-GCN must beat CAGNET at 8 GPUs")
	}

	fig14 := get("fig14")
	if s := fig14.Values["reddit/mggcn/8"]; s < 4 {
		t.Errorf("fig14: reddit 8-GPU speedup vs DGL %.2f too small", s)
	}

	table2 := get("table2")
	if v := table2.Values["reddit/1"]; v < 0.2 || v > 1.8 {
		t.Errorf("table2: reddit 1-socket %.2fs outside the paper band (0.60s)", v)
	}

	table3 := get("table3")
	if table3.Values["papers/1"] != -1 || table3.Values["papers/8"] <= 0 {
		t.Errorf("table3: papers must OOM below 8 GPUs and fit at 8")
	}
	if table3.Values["products/8"] >= table3.Values["products/1"] {
		t.Errorf("table3: products must scale")
	}

	strat := get("strategies")
	if strat.Values["DGX-A100 1.5D/mem"] < strat.Values["DGX-A100 1D-row/mem"]*1.5 {
		t.Errorf("strategies: 1.5D must use ~2x memory")
	}
	if strat.Values["DGX-A100 1.5D/comm"] >= strat.Values["DGX-A100 1D-row/comm"] {
		t.Errorf("strategies: 1.5D comm must win on NVSwitch")
	}

	ord := get("ordering")
	if ord.Values["random"] >= ord.Values["natural"] {
		t.Errorf("ordering: random permutation must beat natural")
	}

	expl := get("explosion")
	if expl.Values["reddit/1hop"] < 0.9 {
		t.Errorf("explosion: reddit 1-hop reach %.2f, want near total", expl.Values["reddit/1hop"])
	}
	if expl.Values["minibatch/edge_ratio"] <= 1 {
		t.Errorf("explosion: sampled epoch must touch more edges than full batch")
	}

	gat := get("gat")
	if gat.Values["cost/sddmm"] <= 0 {
		t.Errorf("gat: missing SDDMM cost")
	}

	mn := get("multinode")
	if mn.Values["16/speedup"] >= mn.Values["8/speedup"] {
		t.Errorf("multinode: crossing the node boundary must hurt: 8=%v 16=%v",
			mn.Values["8/speedup"], mn.Values["16/speedup"])
	}

	wi := get("whatif")
	if wi.Values["double HBM bandwidth"] >= wi.Values["DGX-A100 (baseline)"] {
		t.Errorf("whatif: doubling HBM bandwidth must speed Reddit up")
	}
}
