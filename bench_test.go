package mggcn

// The benchmark harness: one Benchmark per table and figure of the paper's
// evaluation (§6). Each benchmark measures the operation the figure times
// — usually one full-batch epoch under the figure's configuration — and
// reports the simulated epoch time at paper scale as the custom metric
// "sim-ms/epoch" (wall-clock ns/op measures the simulator itself, not the
// modeled machine). Regenerate the full tables with: go run ./cmd/mggcn-bench

import (
	"fmt"
	"sync"
	"testing"

	"mggcn/internal/baseline"
	"mggcn/internal/sim"
)

var (
	benchTrainersMu sync.Mutex
	benchTrainers   = map[string]*Trainer{}
)

// benchTrainer builds (and caches) a phantom trainer for a figure config.
func benchTrainer(b *testing.B, machine MachineSpec, dataset string, p, hidden, layers int, permute, overlap bool) *Trainer {
	b.Helper()
	key := fmt.Sprintf("%s/%s/%d/%d/%d/%t/%t", machine.Name, dataset, p, hidden, layers, permute, overlap)
	benchTrainersMu.Lock()
	defer benchTrainersMu.Unlock()
	if tr, ok := benchTrainers[key]; ok {
		return tr
	}
	ds, err := LoadDataset(dataset, true)
	if err != nil {
		b.Fatal(err)
	}
	o := DefaultOptions(machine, p)
	o.Hidden, o.Layers = hidden, layers
	o.Permute, o.Overlap = permute, overlap
	tr, err := NewTrainer(ds, o)
	if err != nil {
		if IsOOM(err) {
			b.Skipf("configuration OOMs (as in the paper): %v", err)
		}
		b.Fatal(err)
	}
	benchTrainers[key] = tr
	return tr
}

// runEpochBench loops RunEpoch and reports the simulated epoch time.
func runEpochBench(b *testing.B, tr *Trainer) {
	b.Helper()
	var sec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sec = mustEpoch(tr).EpochSeconds
	}
	b.ReportMetric(sec*1e3, "sim-ms/epoch")
}

// BenchmarkTable1Generation measures dataset synthesis (Table 1's inputs).
func BenchmarkTable1Generation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := SynthesizeDataset("bench", 3300, 3, 64, 6, uint64(i), true)
		if ds.N() != 3300 {
			b.Fatal("bad dataset")
		}
	}
}

// BenchmarkFig05Breakdown runs the Fig 5 configuration (model A, DGX-V100)
// and reports the SpMM share of the epoch.
func BenchmarkFig05Breakdown(b *testing.B) {
	for _, dataset := range []string{"arxiv", "products", "reddit"} {
		for _, p := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/gpus=%d", dataset, p), func(b *testing.B) {
				tr := benchTrainer(b, DGXV100(), dataset, p, 512, 2, true, true)
				var spmmPct float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					spmmPct = mustEpoch(tr).BreakdownPercent()[sim.KindSpMM]
				}
				b.ReportMetric(spmmPct, "spmm-%")
			})
		}
	}
}

// BenchmarkFig06Timeline times the epoch under original vs permuted
// ordering (Products, 4 GPUs, no overlap) — Fig 6's contrast.
func BenchmarkFig06Timeline(b *testing.B) {
	for _, permute := range []bool{false, true} {
		name := "original"
		if permute {
			name = "permuted"
		}
		b.Run(name, func(b *testing.B) {
			runEpochBench(b, benchTrainer(b, DGXV100(), "products", 4, 512, 2, permute, false))
		})
	}
}

// BenchmarkFig07Ablation sweeps the permute/overlap ablation on 8 GPUs.
func BenchmarkFig07Ablation(b *testing.B) {
	for _, dataset := range []string{"arxiv", "products", "reddit"} {
		for _, cfg := range []struct {
			name             string
			permute, overlap bool
		}{
			{"orig", false, false},
			{"perm", true, false},
			{"perm+ovlp", true, true},
		} {
			b.Run(dataset+"/"+cfg.name, func(b *testing.B) {
				runEpochBench(b, benchTrainer(b, DGXV100(), dataset, 8, 512, 2, cfg.permute, cfg.overlap))
			})
		}
	}
}

// BenchmarkFig08Overlap times the epoch with and without §4.3 overlap
// (permuted Products, 4 GPUs) — Fig 8's contrast.
func BenchmarkFig08Overlap(b *testing.B) {
	for _, overlap := range []bool{false, true} {
		name := "no-overlap"
		if overlap {
			name = "overlap"
		}
		b.Run(name, func(b *testing.B) {
			runEpochBench(b, benchTrainer(b, DGXV100(), "products", 4, 512, 2, true, overlap))
		})
	}
}

// BenchmarkFig09DegreeSweep times epochs across the BTER degree family and
// reports the 8-GPU speedup over 1 GPU.
func BenchmarkFig09DegreeSweep(b *testing.B) {
	for _, factor := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%dx", factor), func(b *testing.B) {
			ds := DegreeScaledDataset(factor, true)
			tr1, err := NewTrainer(ds, DefaultOptions(DGXV100(), 1))
			if err != nil {
				b.Fatal(err)
			}
			tr8, err := NewTrainer(ds, DefaultOptions(DGXV100(), 8))
			if err != nil {
				b.Fatal(err)
			}
			var speedup float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				speedup = mustEpoch(tr1).EpochSeconds / mustEpoch(tr8).EpochSeconds
			}
			b.ReportMetric(speedup, "speedup-8gpu")
		})
	}
}

// benchComparison reports MG-GCN's simulated epoch next to the baseline's.
func benchComparison(b *testing.B, machine MachineSpec, dataset string, withCAGNET bool) {
	tr := benchTrainer(b, machine, dataset, 8, 512, 2, true, true)
	ds, err := LoadDataset(dataset, true)
	if err != nil {
		b.Fatal(err)
	}
	dgl := baseline.NewDGL(machine, ds.Scale(), 512, 2)
	cag := baseline.NewCAGNET(machine, 8, ds.Scale(), 512, 2)
	var mg, dglSec, cagSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg = mustEpoch(tr).EpochSeconds
		dglSec = dgl.EpochSeconds(ds.g)
		if withCAGNET {
			cagSec = cag.EpochSeconds(ds.g)
		}
	}
	b.ReportMetric(mg*1e3, "mggcn-sim-ms")
	b.ReportMetric(dglSec*1e3, "dgl-sim-ms")
	b.ReportMetric(dglSec/mg, "speedup-vs-dgl")
	if withCAGNET {
		b.ReportMetric(cagSec/mg, "speedup-vs-cagnet")
	}
}

// BenchmarkFig10V100Runtime regenerates the Fig 10 comparison rows.
func BenchmarkFig10V100Runtime(b *testing.B) {
	for _, dataset := range []string{"cora", "arxiv", "products", "reddit"} {
		b.Run(dataset, func(b *testing.B) { benchComparison(b, DGXV100(), dataset, true) })
	}
}

// BenchmarkFig11V100Speedup reports the Fig 11 speedups (same runs as Fig
// 10, normalized to DGL).
func BenchmarkFig11V100Speedup(b *testing.B) {
	b.Run("products", func(b *testing.B) { benchComparison(b, DGXV100(), "products", true) })
}

// BenchmarkFig12Memory sweeps the layers-within-budget search of Fig 12.
func BenchmarkFig12Memory(b *testing.B) {
	ds, err := LoadDataset("reddit", true)
	if err != nil {
		b.Fatal(err)
	}
	o := DefaultOptions(DGXV100(), 8)
	var layers int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layers = 0
		for EstimateMemoryBytesPerDevice(ds, optWithLayers(o, layers+1)) <= 30<<30 {
			layers++
		}
	}
	b.ReportMetric(float64(layers), "max-layers-30GiB")
}

func optWithLayers(o Options, layers int) Options {
	o.Layers = layers
	return o
}

// BenchmarkFig13A100Runtime regenerates the Fig 13 comparison rows.
func BenchmarkFig13A100Runtime(b *testing.B) {
	for _, dataset := range []string{"cora", "arxiv", "products", "reddit"} {
		b.Run(dataset, func(b *testing.B) { benchComparison(b, DGXA100(), dataset, false) })
	}
}

// BenchmarkFig14A100Speedup reports the Fig 14 speedups.
func BenchmarkFig14A100Speedup(b *testing.B) {
	b.Run("reddit", func(b *testing.B) { benchComparison(b, DGXA100(), "reddit", false) })
}

// BenchmarkTable2DistGNN evaluates the DistGNN cost model at its Table 2
// operating points.
func BenchmarkTable2DistGNN(b *testing.B) {
	for _, cfg := range []struct {
		dataset string
		hidden  int
		sockets int
	}{
		{"reddit", 16, 1}, {"products", 256, 64}, {"papers", 256, 128},
	} {
		b.Run(fmt.Sprintf("%s/%dskt", cfg.dataset, cfg.sockets), func(b *testing.B) {
			ds, err := LoadDataset(cfg.dataset, true)
			if err != nil {
				b.Fatal(err)
			}
			layers := 3
			if cfg.dataset == "reddit" {
				layers = 2
			}
			m := baseline.NewDistGNN(cfg.hidden, layers)
			var sec float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sec = m.EpochSeconds(ds.g, ds.Scale(), cfg.sockets)
			}
			b.ReportMetric(sec*1e3, "sim-ms/epoch")
		})
	}
}

// BenchmarkTable3MGGCN regenerates the Table 3 cells: the §6 models on
// DGX-A100 with 8 GPUs.
func BenchmarkTable3MGGCN(b *testing.B) {
	for _, cfg := range []struct {
		dataset        string
		hidden, layers int
	}{
		{"reddit", 16, 2}, {"products", 256, 3}, {"proteins", 256, 3}, {"papers", 208, 3},
	} {
		b.Run(cfg.dataset, func(b *testing.B) {
			runEpochBench(b, benchTrainer(b, DGXA100(), cfg.dataset, 8, cfg.hidden, cfg.layers, true, true))
		})
	}
}

// BenchmarkAccuracyEpoch measures one real (non-phantom) distributed
// training epoch — actual float32 math across 4 simulated devices.
func BenchmarkAccuracyEpoch(b *testing.B) {
	ds := SynthesizeDataset("bench-real", 2000, 16, 32, 8, 11, false)
	o := DefaultOptions(DGXA100(), 4)
	o.Hidden = 64
	tr, err := NewTrainer(ds, o)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustEpoch(tr)
	}
}

// BenchmarkEpochWallClock measures the real wall-clock of one non-phantom
// Products-scale epoch on 8 simulated devices: serial closure issue
// (ExecWorkers = 1) against the dependency-driven parallel executor
// (ExecWorkers = GOMAXPROCS). Unlike the figure benchmarks above, the
// headline metric here IS ns/op — the replayed float32 arithmetic is the
// work being parallelized, and on a host with GOMAXPROCS >= 8 the parallel
// replay should cut the epoch by >= 2x. cmd/mggcn-epochbench emits the same
// matrix as machine-readable JSON (BENCH_epoch.json).
func BenchmarkEpochWallClock(b *testing.B) {
	ds, err := LoadDataset("products", false)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name        string
		execWorkers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			o := DefaultOptions(DGXA100(), 8)
			o.Hidden = 128 // keeps a single-thread epoch near a second
			o.ExecWorkers = mode.execWorkers
			tr, err := NewTrainer(ds, o)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustEpoch(tr)
			}
		})
	}
}

// BenchmarkSec51Analysis evaluates the closed-form §5.1 comparison.
func BenchmarkSec51Analysis(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = baseline.CommTime15D(DGXV100(), 1e6, 512) / baseline.CommTime1D(DGXV100(), 1e6, 512)
	}
	b.ReportMetric(ratio, "1.5D/1D-ratio")
}

// BenchmarkStrategies compares the three §4.1/§5.1 partitioning strategies
// end-to-end (Products, 8 GPUs, DGX-A100).
func BenchmarkStrategies(b *testing.B) {
	for _, s := range []Strategy{Strategy1DRow, Strategy1DCol, Strategy15D} {
		b.Run(s.String(), func(b *testing.B) {
			ds, err := LoadDataset("products", true)
			if err != nil {
				b.Fatal(err)
			}
			o := DefaultOptions(DGXA100(), 8)
			o.Strategy = s
			tr, err := NewTrainer(ds, o)
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sec = mustEpoch(tr).EpochSeconds
			}
			b.ReportMetric(sec*1e3, "sim-ms/epoch")
		})
	}
}

// BenchmarkOrderings compares the §5.2 vertex-ordering ablation.
func BenchmarkOrderings(b *testing.B) {
	for _, ord := range []Ordering{OrderingNatural, OrderingRandom, OrderingBlockCyclic} {
		b.Run(ord.String(), func(b *testing.B) {
			ds, err := LoadDataset("products", true)
			if err != nil {
				b.Fatal(err)
			}
			o := DefaultOptions(DGXV100(), 8)
			o.Ordering = ord
			tr, err := NewTrainer(ds, o)
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sec = mustEpoch(tr).EpochSeconds
			}
			b.ReportMetric(sec*1e3, "sim-ms/epoch")
		})
	}
}

// BenchmarkMultiNodeWall measures the node-boundary penalty: the same
// Reddit epoch on 8 GPUs (one node) vs 16 GPUs (two nodes).
func BenchmarkMultiNodeWall(b *testing.B) {
	cluster := MultiNode(DGXV100(), 2, 12.5e9)
	for _, p := range []int{8, 16} {
		b.Run(fmt.Sprintf("gpus=%d", p), func(b *testing.B) {
			ds, err := LoadDataset("reddit", true)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := NewTrainer(ds, DefaultOptions(cluster, p))
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sec = mustEpoch(tr).EpochSeconds
			}
			b.ReportMetric(sec*1e3, "sim-ms/epoch")
		})
	}
}
