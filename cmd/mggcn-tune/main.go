// Command mggcn-tune derives this host's kernel blocking parameters — the
// GeMM k-panel and flat-fallback threshold, the SpMM feature tile, and the
// SELL-C-σ defaults — and writes the choice file other tools load and
// Apply at startup.
//
// Two modes:
//
//	mggcn-tune                               # deterministic -> TUNE.json
//	mggcn-tune -mode measured -reps 5        # wall-clock timed candidates
//	mggcn-tune -check TUNE.json              # validate + print a file
//
// Deterministic mode is a pure function of the host profile (dispatch
// impl, lanes, CPU counts): rerunning it produces a byte-identical file,
// which CI pins. Measured mode times the candidate grid on seeded
// synthetic operands; its winners may vary run to run and the file says
// so in its mode field. Every candidate is result-neutral — blocking
// boundaries never change kernel accumulation order — so tuning affects
// speed only.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mggcn/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mggcn-tune: ")
	var (
		out   = flag.String("out", "TUNE.json", "output choice file ('-' for stdout)")
		mode  = flag.String("mode", "deterministic", "deterministic | measured")
		seed  = flag.Int64("seed", 1, "operand seed for measured mode")
		reps  = flag.Int("reps", 3, "repetitions per candidate in measured mode (best-of)")
		check = flag.String("check", "", "validate an existing choice file and exit")
	)
	flag.Parse()

	if *check != "" {
		c, err := tune.Load(*check)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid %s choice for impl=%s lanes=%d: blockK=%d flatMax=%d colTile=%d\n",
			*check, c.Mode, c.Profile.Impl, c.Profile.Lanes, c.BlockK, c.FlatMaxBytes, c.SpMMColTile)
		return
	}

	var c tune.Choice
	switch *mode {
	case "deterministic":
		c = tune.DeterministicChoice(tune.HostProfile())
	case "measured":
		c = tune.MeasuredChoice(*seed, *reps)
	default:
		log.Fatalf("unknown -mode %q (want deterministic or measured)", *mode)
	}
	if err := c.Validate(); err != nil {
		log.Fatal(err)
	}
	if *out == "-" {
		data, err := c.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
	} else if err := c.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tuned (%s, impl=%s lanes=%d): blockK=%d flatMax=%d colTile=%d sell C=%d sigma=%d\n",
		c.Mode, c.Profile.Impl, c.Profile.Lanes, c.BlockK, c.FlatMaxBytes, c.SpMMColTile, c.SellC, c.SellSigma)
	for _, s := range c.GemmShapes {
		fmt.Fprintf(os.Stderr, "  gemm %dx%dx%d -> %s\n", s.M, s.K, s.N, s.Winner)
	}
}
