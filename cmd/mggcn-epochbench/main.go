// Command mggcn-epochbench measures the real wall-clock of non-phantom
// training epochs under the dependency-driven parallel executor and writes
// the result matrix as machine-readable JSON (BENCH_epoch.json by default).
//
// Each cell trains the same Products-scale dataset at a device count in
// {1, 4, 8} with the epoch replay issued serially (ExecWorkers = 1) and in
// parallel (ExecWorkers = GOMAXPROCS), and reports the median epoch
// wall-clock plus the parallel-over-serial speedup. The host's GOMAXPROCS
// and CPU count are recorded alongside: the parallel executor can only beat
// serial issue when the host has cores to run independent devices' closures
// on, so a speedup claim is meaningful only at gomaxprocs >= devices.
//
//	mggcn-epochbench                      # full matrix -> BENCH_epoch.json
//	mggcn-epochbench -devices 8 -epochs 3 -out -   # one row, JSON to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"mggcn"
)

// cell is one (devices, execWorkers) measurement.
type cell struct {
	Devices     int     `json:"devices"`
	ExecWorkers int     `json:"exec_workers"` // 0 means GOMAXPROCS
	Epochs      int     `json:"epochs"`
	MedianMS    float64 `json:"median_epoch_ms"`
	MinMS       float64 `json:"min_epoch_ms"`
}

// row pairs the serial and parallel cells at one device count.
type row struct {
	Devices  int     `json:"devices"`
	Serial   cell    `json:"serial"`
	Parallel cell    `json:"parallel"`
	Speedup  float64 `json:"speedup"`
}

type result struct {
	Dataset    string  `json:"dataset"`
	N          int     `json:"n"`
	M          int64   `json:"m"`
	Hidden     int     `json:"hidden"`
	Layers     int     `json:"layers"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numcpu"`
	Rows       []row   `json:"rows"`
	WallSecs   float64 `json:"wall_seconds"`
}

func main() {
	var (
		dataset = flag.String("dataset", "products", "catalog dataset to train (non-phantom)")
		devices = flag.String("devices", "1,4,8", "comma-separated device counts")
		hidden  = flag.Int("hidden", 128, "hidden layer width")
		epochs  = flag.Int("epochs", 3, "epochs per cell (median reported)")
		out     = flag.String("out", "BENCH_epoch.json", "output path, or - for stdout")
	)
	flag.Parse()

	ds, err := mggcn.LoadDataset(*dataset, false)
	if err != nil {
		log.Fatal(err)
	}
	res := result{
		Dataset: ds.Name(), N: ds.N(), M: ds.M(),
		Hidden: *hidden, Layers: 2,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	start := time.Now()
	for _, field := range strings.Split(*devices, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			log.Fatalf("bad -devices entry %q: %v", field, err)
		}
		serial := measure(ds, p, *hidden, 1, *epochs)
		parallel := measure(ds, p, *hidden, 0, *epochs)
		r := row{Devices: p, Serial: serial, Parallel: parallel,
			Speedup: serial.MedianMS / parallel.MedianMS}
		res.Rows = append(res.Rows, r)
		fmt.Fprintf(os.Stderr, "devices=%d serial=%.0fms parallel=%.0fms speedup=%.2fx\n",
			p, serial.MedianMS, parallel.MedianMS, r.Speedup)
	}
	res.WallSecs = time.Since(start).Seconds()

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (gomaxprocs=%d)\n", *out, res.GoMaxProcs)
}

// measure trains epochs steps at the given replay parallelism and returns
// the wall-clock cell. A fresh trainer per cell keeps cells independent.
func measure(ds *mggcn.Dataset, p, hidden, execWorkers, epochs int) cell {
	o := mggcn.DefaultOptions(mggcn.DGXA100(), p)
	o.Hidden = hidden
	o.ExecWorkers = execWorkers
	tr, err := mggcn.NewTrainer(ds, o)
	if err != nil {
		log.Fatal(err)
	}
	tr.RunEpoch() // warm-up: first epoch pays one-time cache fills
	times := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		t0 := time.Now()
		tr.RunEpoch()
		times = append(times, float64(time.Since(t0).Microseconds())/1e3)
	}
	sort.Float64s(times)
	return cell{
		Devices: p, ExecWorkers: execWorkers, Epochs: epochs,
		MedianMS: times[len(times)/2], MinMS: times[0],
	}
}
