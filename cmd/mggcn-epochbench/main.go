// Command mggcn-epochbench measures the real wall-clock of non-phantom
// training epochs under the dependency-driven parallel executor and writes
// the result matrix as machine-readable JSON (BENCH_epoch.json by default).
//
// Each cell trains the same Products-scale dataset at a device count in
// {1, 4, 8} with the epoch replay issued serially (ExecWorkers = 1) and in
// parallel (ExecWorkers = GOMAXPROCS), and reports the median epoch
// wall-clock plus the parallel-over-serial speedup. Both knobs of the shared
// worker pool are recorded per cell: Workers (kernel lanes per Parallel*
// call) and ExecWorkers (replay closures in flight). The host's GOMAXPROCS
// and CPU count are recorded alongside, and a warning is emitted — in the
// JSON and on stderr — when the host has fewer CPUs than simulated devices:
// on such hosts parallel replay cannot beat serial (there is nothing to run
// the extra closures on) and sub-1.0 speedups say nothing about the
// executor.
//
// Two further sections feed the performance story:
//
//   - "kernels": microbenchmarks of the optimized SpMM/GeMM paths (cache
//     blocking + SIMD dispatch, and the SELL-C-σ layout) against the
//     retained flat reference kernels (SpMMFlat/GemmFlat). GeMM runs a
//     shape set straddling the flat-fallback threshold and records each
//     shape's winner; the active dispatch table (scalar/avx2/neon) is
//     recorded as kernel_impl.
//
//   - "sweep": a workers x exec_workers grid at the largest device count,
//     showing how the two pool knobs trade off on this host.
//
// Every matrix row and sampled cell also carries a memory column: the
// memcheck closed form's certified peak slab bytes next to the allocation
// high-water sim.AllocMeter measured on one extra recorded epoch of the
// same configuration (a fresh trainer, so the observer never pollutes the
// timings), making memory regressions diffable alongside time.
//
// -tune applies an mggcn-tune choice file before measuring, so a recorded
// run reflects the host's tuned policy rather than the defaults.
//
// -mode selects the sections: "epoch" is the full-batch matrix above,
// "sample" sweeps the sampled minibatch pipeline (cache fraction x
// pipelining at one device count, DESIGN.md §8) into BENCH_sample.json
// with simulated epoch seconds, stream overlap ratios, pipeline speedups,
// and the extract stage's gather hit/miss words; "all" (default) runs
// both.
//
// Usage:
//
//	mggcn-epochbench                      # both matrices -> BENCH_*.json
//	mggcn-epochbench -devices 8 -epochs 3 -out -   # one row, JSON to stdout
//	mggcn-epochbench -tune TUNE.json      # measure under a tuned policy
//	mggcn-epochbench -mode sample -samplefracs 0,0.5   # sampled sweep only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"mggcn"
	"mggcn/internal/comm"
	"mggcn/internal/core"
	"mggcn/internal/fault"
	"mggcn/internal/gen"
	"mggcn/internal/graph"
	"mggcn/internal/kernel"
	"mggcn/internal/memcheck"
	"mggcn/internal/nn"
	"mggcn/internal/sim"
	"mggcn/internal/sparse"
	"mggcn/internal/tensor"
	"mggcn/internal/tune"
)

// cell is one (devices, workers, execWorkers) measurement.
type cell struct {
	Devices     int     `json:"devices"`
	Workers     int     `json:"workers"`      // kernel lanes per call; 0 means GOMAXPROCS
	ExecWorkers int     `json:"exec_workers"` // replay closures in flight; 0 means GOMAXPROCS
	Epochs      int     `json:"epochs"`
	MedianMS    float64 `json:"median_epoch_ms"`
	MinMS       float64 `json:"min_epoch_ms"`
}

// rowMemory pairs the statically certified per-device memory with the
// allocation high-water the meter measured during one recorded epoch at
// the same device count, so memory regressions become diffable alongside
// the timings. All values are worst-device, at generated scale; Certified
// means the closed form, the meter, and the pool agreed byte-exactly on
// every device (the mggcn-memcheck invariant holding on this very cell).
type rowMemory struct {
	CertifiedSlabBytes int64 `json:"certified_peak_slab_bytes"`
	MeasuredSlabBytes  int64 `json:"measured_slab_high_water_bytes"`
	SlabCount          int   `json:"certified_slab_count"`
	ResidentBytes      int64 `json:"certified_resident_bytes"`
	PoolBytes          int64 `json:"pool_used_bytes"`
	Certified          bool  `json:"certified"`
}

// row pairs the serial and parallel cells at one device count.
type row struct {
	Devices  int       `json:"devices"`
	Serial   cell      `json:"serial"`
	Parallel cell      `json:"parallel"`
	Speedup  float64   `json:"speedup"`
	Memory   rowMemory `json:"memory"`
	Warning  string    `json:"warning,omitempty"`
}

// kernelBench compares one optimized kernel against its flat reference on
// a fixed shape. Winner names the faster side ("flat" or the optimized
// kernel's label) — the per-shape record the autotuner's policy is judged
// against.
type kernelBench struct {
	Kernel    string  `json:"kernel"`
	Shape     string  `json:"shape"`
	FlatMS    float64 `json:"flat_ms"`
	BlockedMS float64 `json:"blocked_ms"`
	Speedup   float64 `json:"speedup"`
	Winner    string  `json:"winner"`
}

type result struct {
	Dataset    string        `json:"dataset"`
	N          int           `json:"n"`
	M          int64         `json:"m"`
	Hidden     int           `json:"hidden"`
	Layers     int           `json:"layers"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	KernelImpl string        `json:"kernel_impl"` // dispatch table: scalar | avx2 | neon
	TuneFile   string        `json:"tune_file,omitempty"`
	Warnings   []string      `json:"warnings,omitempty"`
	Kernels    []kernelBench `json:"kernels"`
	Rows       []row         `json:"rows"`
	Sweep      []cell        `json:"sweep,omitempty"`
	WallSecs   float64       `json:"wall_seconds"`
}

func main() {
	var (
		dataset  = flag.String("dataset", "products", "catalog dataset to train (non-phantom)")
		devices  = flag.String("devices", "1,4,8", "comma-separated device counts")
		hidden   = flag.Int("hidden", 128, "hidden layer width")
		epochs   = flag.Int("epochs", 3, "epochs per cell (median reported)")
		workers  = flag.Int("workers", 0, "kernel lanes per Parallel* call in the matrix rows (0: GOMAXPROCS)")
		sweep    = flag.String("sweep", "1,0", "comma-separated workers and exec_workers values for the grid at the largest device count (empty: skip)")
		tuneFile = flag.String("tune", "", "autotuner choice file (mggcn-tune output) to Apply before benchmarking")
		out      = flag.String("out", "BENCH_epoch.json", "output path, or - for stdout")

		mode          = flag.String("mode", "all", "sections to run: all | epoch | sample")
		sampleOut     = flag.String("sampleout", "BENCH_sample.json", "sampled-pipeline output path, or - for stdout")
		sampleDevices = flag.Int("sampledevices", 4, "device count for the sampled-pipeline matrix")
		sampleBatch   = flag.Int("samplebatch", 512, "sampled minibatch size")
		sampleFanouts = flag.String("samplefanouts", "5,10,15", "comma-separated per-layer fanouts, outermost first")
		sampleFracs   = flag.String("samplefracs", "0,0.25,0.5,0.75", "comma-separated feature-cache fractions")
	)
	flag.Parse()

	if *tuneFile != "" {
		choice, err := tune.Load(*tuneFile)
		if err != nil {
			log.Fatal(err)
		}
		choice.Apply()
		fmt.Fprintf(os.Stderr, "applied %s: blockK=%d flatMax=%d colTile=%d sell=%d/%d\n",
			*tuneFile, choice.BlockK, choice.FlatMaxBytes, choice.SpMMColTile, choice.SellC, choice.SellSigma)
	}

	if *mode != "all" && *mode != "epoch" && *mode != "sample" {
		log.Fatalf("bad -mode %q: want all, epoch, or sample", *mode)
	}
	if *mode != "epoch" {
		benchSampled(*dataset, *sampleDevices, *hidden, *sampleBatch,
			parseInts(*sampleFanouts, "-samplefanouts"),
			parseFloats(*sampleFracs, "-samplefracs"), *epochs, *sampleOut)
	}
	if *mode == "sample" {
		return
	}

	ds, err := mggcn.LoadDataset(*dataset, false)
	if err != nil {
		log.Fatal(err)
	}
	res := result{
		Dataset: ds.Name(), N: ds.N(), M: ds.M(),
		Hidden: *hidden, Layers: 2,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		KernelImpl: kernel.Impl(), TuneFile: *tuneFile,
	}
	start := time.Now()

	res.Kernels = benchKernels(*hidden)
	for _, k := range res.Kernels {
		fmt.Fprintf(os.Stderr, "kernel %-9s %-24s flat=%.2fms opt=%.2fms speedup=%.2fx winner=%s\n",
			k.Kernel, k.Shape, k.FlatMS, k.BlockedMS, k.Speedup, k.Winner)
	}

	// The memory column works from the raw graph (the certifier's accessors
	// live on the core trainer, below the top-level wrapper the timing
	// cells use), so load it once alongside the dataset.
	memG, memSpec, err := gen.Load(*dataset, false)
	if err != nil {
		log.Fatal(err)
	}

	counts := parseInts(*devices, "-devices")
	for _, p := range counts {
		serial := measure(ds, p, *hidden, *workers, 1, *epochs)
		parallel := measure(ds, p, *hidden, *workers, 0, *epochs)
		r := row{Devices: p, Serial: serial, Parallel: parallel,
			Speedup: serial.MedianMS / parallel.MedianMS,
			Memory:  measureMemory(memG, memSpec.Scale, p, *hidden)}
		if res.NumCPU < p {
			r.Warning = starvedWarning(res.NumCPU, p)
		}
		res.Rows = append(res.Rows, r)
		fmt.Fprintf(os.Stderr, "devices=%d serial=%.0fms parallel=%.0fms speedup=%.2fx slab=%dB certified=%t\n",
			p, serial.MedianMS, parallel.MedianMS, r.Speedup, r.Memory.MeasuredSlabBytes, r.Memory.Certified)
		if r.Warning != "" {
			fmt.Fprintf(os.Stderr, "WARNING: %s\n", r.Warning)
		}
	}
	if len(counts) > 0 {
		if maxP := counts[len(counts)-1]; res.NumCPU < maxP {
			res.Warnings = append(res.Warnings, starvedWarning(res.NumCPU, maxP))
		}
	}

	if *sweep != "" && len(counts) > 0 {
		p := counts[len(counts)-1]
		grid := parseInts(*sweep, "-sweep")
		for _, w := range grid {
			for _, ew := range grid {
				c := measure(ds, p, *hidden, w, ew, *epochs)
				res.Sweep = append(res.Sweep, c)
				fmt.Fprintf(os.Stderr, "sweep devices=%d workers=%d exec_workers=%d median=%.0fms\n",
					p, w, ew, c.MedianMS)
			}
		}
	}
	res.WallSecs = time.Since(start).Seconds()

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (gomaxprocs=%d)\n", *out, res.GoMaxProcs)
}

// sampleCell is one (cacheFrac, pipeline) sampled-pipeline measurement:
// simulated epoch seconds on the machine plus the extract stage's gather
// accounting. SpeedupVsUnpipelined is filled on pipelined cells from the
// matching pipeline-off cell at the same cache fraction.
type sampleCell struct {
	Devices              int     `json:"devices"`
	Batch                int     `json:"batch"`
	Fanouts              []int   `json:"fanouts"`
	CacheFrac            float64 `json:"cache_frac"`
	Pipeline             bool    `json:"pipeline"`
	Epochs               int     `json:"epochs"`
	SimEpochSeconds      float64 `json:"sim_epoch_seconds"`
	OverlapRatio         float64 `json:"overlap_ratio"`
	SpeedupVsUnpipelined float64 `json:"speedup_vs_unpipelined,omitempty"`
	GatherHitWords       int64   `json:"gather_hit_words"`
	GatherMissWords      int64   `json:"gather_miss_words"`
	CacheHitRate         float64 `json:"cache_hit_rate"`
	Loss                 float64 `json:"loss"`
	WallMS               float64 `json:"wall_epoch_ms"`

	// Memory column: the slab high-water the allocation meter measured on
	// one recorded epoch of this cell, next to the memcheck closed form's
	// certified peak when the cell meets the form's preconditions (equal
	// steps per device, enough of them); MemUncertified carries the reason
	// otherwise, with the measured value still recorded.
	CertifiedSlabBytes int64  `json:"certified_peak_slab_bytes,omitempty"`
	MeasuredSlabBytes  int64  `json:"measured_slab_high_water_bytes"`
	MemCertified       bool   `json:"memory_certified"`
	MemUncertified     string `json:"memory_uncertified,omitempty"`
}

type sampleResult struct {
	Dataset    string       `json:"dataset"`
	N          int          `json:"n"`
	M          int64        `json:"m"`
	TrainVerts int          `json:"train_verts"`
	Hidden     int          `json:"hidden"`
	Layers     int          `json:"layers"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	KernelImpl string       `json:"kernel_impl"`
	Cells      []sampleCell `json:"cells"`
	// Recovery is the elastic pipeline's overhead column: one injected
	// fault per row, the run's effective simulated time against the
	// fault-free baseline at the starting device count.
	Recovery []recoveryCell `json:"recovery,omitempty"`
	WallSecs float64        `json:"wall_seconds"`
}

// recoveryCell measures one elastic sampled run under an injected fault:
// how many recoveries it took, the surviving group size, and the ratio of
// its effective simulated time to the fault-free run's. The ratio counts
// completed (possibly degraded-P) epochs; voided partial replays carry no
// simulated time, so it isolates the cost of retrying and of running on
// fewer devices.
type recoveryCell struct {
	Fault            string  `json:"fault"`
	FinalP           int     `json:"final_p"`
	Recoveries       int     `json:"recoveries"`
	EffectiveEpochs  int     `json:"effective_epochs"`
	SimSeconds       float64 `json:"sim_seconds"`
	FaultFreeSeconds float64 `json:"fault_free_sim_seconds"`
	RecoveryOverhead float64 `json:"recovery_overhead_ratio"`
}

// benchSampled measures the factored sampler/trainer pipeline: a cache
// fraction x pipeline on/off matrix at one device count, reporting
// simulated epoch time, stream overlap, and gather hit/miss words. The
// simulated times are the deterministic output of the cost model, so the
// pipeline speedup and cache traffic cuts they show are reproducible on
// any host; wall_epoch_ms is the only host-dependent column.
func benchSampled(name string, devices, hidden, batch int, fanouts []int, fracs []float64, epochs int, outPath string) {
	g, spec, err := gen.Load(name, false)
	if err != nil {
		log.Fatal(err)
	}
	res := sampleResult{
		Dataset: name, N: g.N(), M: g.M(),
		Hidden: hidden, Layers: len(fanouts),
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		KernelImpl: kernel.Impl(),
	}
	start := time.Now()
	for _, frac := range fracs {
		var offSim float64
		for _, pipeline := range []bool{false, true} {
			cfg := core.DefaultSampledConfig(sim.DGXA100(), devices, spec.Scale)
			cfg.Hidden = hidden
			cfg.Layers = len(fanouts)
			cfg.Fanouts = fanouts
			cfg.Batch = batch
			cfg.CacheFrac = frac
			cfg.Pipeline = pipeline
			cfg.CommMeter = comm.NewMeter()
			tr, err := core.NewSampledTrainer(g, cfg)
			if err != nil {
				log.Fatal(err)
			}
			res.TrainVerts = tr.TrainVertexCount()
			sims := make([]float64, 0, epochs)
			walls := make([]float64, 0, epochs)
			var last *core.SampledEpochStats
			for e := 0; e < epochs; e++ {
				t0 := time.Now()
				s, err := tr.RunEpoch()
				if err != nil {
					log.Fatal(err)
				}
				walls = append(walls, float64(time.Since(t0).Microseconds())/1e3)
				sims = append(sims, s.EpochSeconds)
				last = s
			}
			sort.Float64s(sims)
			sort.Float64s(walls)
			c := sampleCell{
				Devices: devices, Batch: batch, Fanouts: fanouts,
				CacheFrac: frac, Pipeline: pipeline, Epochs: epochs,
				SimEpochSeconds: sims[len(sims)/2],
				OverlapRatio:    last.OverlapRatio,
				GatherHitWords:  cfg.CommMeter.Words(sim.CollGatherHit),
				GatherMissWords: cfg.CommMeter.Words(sim.CollGatherMiss),
				Loss:            last.Loss,
				WallMS:          walls[len(walls)/2],
			}
			if tot := c.GatherHitWords + c.GatherMissWords; tot > 0 {
				c.CacheHitRate = float64(c.GatherHitWords) / float64(tot)
			}
			if pipeline {
				c.SpeedupVsUnpipelined = offSim / c.SimEpochSeconds
			} else {
				offSim = c.SimEpochSeconds
			}
			c.CertifiedSlabBytes, c.MeasuredSlabBytes, c.MemCertified, c.MemUncertified = sampleMemory(g, cfg)
			res.Cells = append(res.Cells, c)
			fmt.Fprintf(os.Stderr,
				"sample frac=%.2f pipeline=%-5t sim=%.1fms overlap=%.2f speedup=%.2fx hit=%.2f wall=%.0fms slab=%dB\n",
				frac, pipeline, c.SimEpochSeconds*1e3, c.OverlapRatio,
				c.SpeedupVsUnpipelined, c.CacheHitRate, c.WallMS, c.MeasuredSlabBytes)
		}
	}
	res.Recovery = benchSampledRecovery(g, spec, devices, hidden, batch, fanouts, epochs)
	res.WallSecs = time.Since(start).Seconds()

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if outPath == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
}

// benchSampledRecovery runs the elastic sampled pipeline under one injected
// fault per row and reports the recovery-overhead column: effective
// simulated seconds against the fault-free baseline at the starting P.
func benchSampledRecovery(g *graph.Graph, spec gen.DatasetSpec, devices, hidden, batch int, fanouts []int, epochs int) []recoveryCell {
	base := func() core.SampledConfig {
		cfg := core.DefaultSampledConfig(sim.DGXA100(), devices, spec.Scale)
		cfg.Hidden = hidden
		cfg.Layers = len(fanouts)
		cfg.Fanouts = fanouts
		cfg.Batch = batch
		cfg.CacheFrac = 0.5
		return cfg
	}
	tr, err := core.NewSampledTrainer(g, base())
	if err != nil {
		log.Fatal(err)
	}
	var faultFree float64
	for e := 0; e < epochs; e++ {
		s, err := tr.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		faultFree += s.EpochSeconds
	}

	plans := []struct {
		name string
		plan fault.Plan
	}{
		{"crash", fault.Plan{Seed: 1, Crash: &fault.CrashSpec{
			Device: devices - 1, OnLabel: "sample", Stream: fault.OnStream(sim.StreamSample)}}},
		{"flaky-sampler", fault.Plan{Seed: 1, TransientTask: &fault.TransientTaskSpec{
			Device: 0, OnLabel: "s1/sample", Failures: 1, Stream: fault.OnStream(sim.StreamSample)}}},
		{"transient-exhaust", fault.Plan{Seed: 1, Transient: &fault.TransientSpec{Every: 2, Failures: 100}}},
	}
	var out []recoveryCell
	for _, p := range plans {
		cfg := base()
		cfg.Fault = fault.New(p.plan)
		cfg.Retry = comm.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond, Multiplier: 2}
		res, err := core.TrainSampledElastic(g, cfg, epochs)
		if err != nil {
			log.Fatalf("recovery bench %s: %v", p.name, err)
		}
		var sim float64
		for _, s := range res.Stats {
			sim += s.EpochSeconds
		}
		c := recoveryCell{
			Fault: p.name, FinalP: res.FinalP,
			Recoveries: len(res.Events), EffectiveEpochs: len(res.Stats),
			SimSeconds: sim, FaultFreeSeconds: faultFree,
		}
		if faultFree > 0 {
			c.RecoveryOverhead = sim / faultFree
		}
		fmt.Fprintf(os.Stderr, "recovery %-17s finalP=%d recoveries=%d overhead=%.3fx\n",
			p.name, c.FinalP, c.Recoveries, c.RecoveryOverhead)
		out = append(out, c)
	}
	return out
}

// sampleMemory records one extra epoch of the cell's configuration on a
// fresh metered trainer (so the observer and its epoch never touch the
// timing or gather columns) and pairs the measured slab high-water with
// the sampled closed form's certified peak. When the cell misses the
// form's preconditions (too few steps per device for a steady-state
// pipeline) the reason is returned and the measured value stands alone.
func sampleMemory(g *graph.Graph, cfg core.SampledConfig) (certified, measured int64, ok bool, note string) {
	meter := sim.NewAllocMeter()
	cfg.CommMeter = nil
	cfg.ExecObserver = meter
	tr, err := core.NewSampledTrainer(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := tr.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	peaks := meter.SlabPeakBytes()
	for _, b := range peaks {
		if b > measured {
			measured = b
		}
	}
	// Batches deal round-robin, so the floor is the fewest steps any device
	// runs; the form's precondition only needs every device past the
	// pipeline's steady state, and the peak itself is step-count free.
	dims := nn.LayerDims(g.FeatDim, cfg.Hidden, cfg.Layers, g.Classes)
	caps := tr.FrontierCapacities()
	fp, err := memcheck.PeakForm("sampled", memcheck.Model{
		Dims: dims, P: cfg.P, Device: 0, Caps: caps,
		Depth: tr.Depth(), Steps: stats.Batches / cfg.P,
	})
	if err != nil {
		log.Fatal(err)
	}
	if fp.Uncertified != "" {
		return 0, measured, false, fp.Uncertified
	}
	certified, err = fp.SlabBytes.Eval(memcheck.SampledEnv(caps, tr.Caches()[0].Slab.Rows, dims))
	if err != nil {
		log.Fatal(err)
	}
	ok = true
	for d := 0; d < cfg.P; d++ {
		if peaks[fmt.Sprintf("d%d", d)] != certified {
			ok = false
		}
	}
	return certified, measured, ok, ""
}

func parseFloats(csv, flagName string) []float64 {
	var vals []float64
	for _, field := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			log.Fatalf("bad %s entry %q: %v", flagName, field, err)
		}
		vals = append(vals, v)
	}
	return vals
}

func starvedWarning(numCPU, devices int) string {
	return fmt.Sprintf("host has %d CPU(s) for %d simulated devices: parallel replay cannot beat serial here, sub-1.0 speedups reflect the host, not the executor", numCPU, devices)
}

func parseInts(csv, flagName string) []int {
	var vals []int
	for _, field := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			log.Fatalf("bad %s entry %q: %v", flagName, field, err)
		}
		vals = append(vals, v)
	}
	return vals
}

// measureMemory records one full-batch epoch at p devices under the
// allocation meter — on a fresh trainer, so the observer never pollutes
// the timing cells — and pairs the measured slab high-water and pool
// bytes with the memcheck closed forms evaluated on the same trainer.
func measureMemory(g *graph.Graph, scale, p, hidden int) rowMemory {
	cfg := core.DefaultConfig(sim.DGXA100(), p, scale)
	cfg.Hidden = hidden
	meter := sim.NewAllocMeter()
	cfg.ExecObserver = meter
	tr, err := core.NewTrainer(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tr.RunEpoch(); err != nil {
		log.Fatal(err)
	}
	mem := rowMemory{Certified: true}
	for d := 0; d < p; d++ {
		fp, err := memcheck.PeakForm("1d-row",
			memcheck.Model{Dims: tr.Dims, P: p, Device: d, Overlap: cfg.Overlap})
		if err != nil {
			log.Fatal(err)
		}
		if fp.Uncertified != "" {
			log.Fatalf("devices=%d d%d: uncertified: %s", p, d, fp.Uncertified)
		}
		env := memcheck.DeviceEnv(int64(tr.DeviceRows(d)), int64(tr.MaxTileRows()),
			tr.AdjacencyBytes(d), tr.Dims)
		certified, err := fp.SlabBytes.Eval(env)
		if err != nil {
			log.Fatal(err)
		}
		resident, err := fp.Resident.Eval(env)
		if err != nil {
			log.Fatal(err)
		}
		measured := meter.SlabPeakBytes()[fmt.Sprintf("d%d", d)]
		pool := tr.PoolUsed(d)
		if certified != measured || resident != pool {
			mem.Certified = false
		}
		if certified > mem.CertifiedSlabBytes {
			mem.CertifiedSlabBytes = certified
			mem.SlabCount = fp.SlabCount
		}
		if measured > mem.MeasuredSlabBytes {
			mem.MeasuredSlabBytes = measured
		}
		if resident > mem.ResidentBytes {
			mem.ResidentBytes = resident
		}
		if pool > mem.PoolBytes {
			mem.PoolBytes = pool
		}
	}
	return mem
}

// measure trains epochs steps at the given kernel and replay parallelism
// and returns the wall-clock cell. A fresh trainer per cell keeps cells
// independent.
func measure(ds *mggcn.Dataset, p, hidden, workers, execWorkers, epochs int) cell {
	o := mggcn.DefaultOptions(mggcn.DGXA100(), p)
	o.Hidden = hidden
	o.Workers = workers
	o.ExecWorkers = execWorkers
	tr, err := mggcn.NewTrainer(ds, o)
	if err != nil {
		log.Fatal(err)
	}
	tr.RunEpoch() // warm-up: first epoch pays one-time cache fills
	times := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		t0 := time.Now()
		tr.RunEpoch()
		times = append(times, float64(time.Since(t0).Microseconds())/1e3)
	}
	sort.Float64s(times)
	return cell{
		Devices: p, Workers: workers, ExecWorkers: execWorkers, Epochs: epochs,
		MedianMS: times[len(times)/2], MinMS: times[0],
	}
}

// benchKernels times the optimized SpMM/GeMM paths against the flat
// reference kernels on GCN-shaped operands. Serial kernels on both sides:
// this isolates cache blocking, SIMD dispatch, and layout from pool
// scheduling. GeMM runs a shape set straddling the flat-fallback
// threshold — including 2048x128x128, the shape that regressed to 0.87x
// before the policy existed — and every shape's winner is recorded. SpMM
// additionally races the SELL-C-σ layout against CSR on the same matrix.
func benchKernels(hidden int) []kernelBench {
	const reps = 5

	n, deg := 4096, 32
	a := benchCSR(n, deg)
	x := randDense(n, hidden, 1)
	c := tensor.NewDense(n, hidden)
	spmmShape := fmt.Sprintf("n=%d deg=%d d=%d", n, deg, hidden)
	spmmFlat := bestOf(reps, func() { sparse.SpMMFlat(a, x, 0, c) })
	spmmBlocked := bestOf(reps, func() { sparse.SpMM(a, x, 0, c) })
	sell := sparse.ToSELLCS(a, sparse.DefaultSellC, sparse.DefaultSellSigma)
	spmmSell := bestOf(reps, func() { sparse.SpMMSell(sell, x, 0, c) })

	out := []kernelBench{
		{Kernel: "spmm", Shape: spmmShape, FlatMS: spmmFlat, BlockedMS: spmmBlocked,
			Speedup: spmmFlat / spmmBlocked, Winner: winner(spmmFlat, spmmBlocked, "blocked")},
		{Kernel: "spmm-sell", Shape: spmmShape, FlatMS: spmmFlat, BlockedMS: spmmSell,
			Speedup: spmmFlat / spmmSell, Winner: winner(spmmFlat, spmmSell, "sell")},
	}
	shapes := [][3]int{{2048, hidden, hidden}, {2048, 128, 128}, {1024, 512, 512}}
	seen := map[string]bool{}
	for _, s := range shapes {
		m, k, nn := s[0], s[1], s[2]
		gemmShape := fmt.Sprintf("%dx%dx%d", m, k, nn)
		if seen[gemmShape] {
			continue
		}
		seen[gemmShape] = true
		ga := randDense(m, k, 2)
		gb := randDense(k, nn, 3)
		gc := tensor.NewDense(m, nn)
		gemmFlat := bestOf(reps, func() { tensor.GemmFlat(1, ga, gb, 0, gc) })
		gemmOpt := bestOf(reps, func() { tensor.Gemm(1, ga, gb, 0, gc) })
		out = append(out, kernelBench{Kernel: "gemm", Shape: gemmShape,
			FlatMS: gemmFlat, BlockedMS: gemmOpt,
			Speedup: gemmFlat / gemmOpt, Winner: winner(gemmFlat, gemmOpt, "blocked")})
	}
	return out
}

func winner(flatMS, optMS float64, optName string) string {
	if flatMS < optMS {
		return "flat"
	}
	return optName
}

// bestOf returns the fastest of reps timed runs in milliseconds — minimum,
// not median: kernel microbenchmarks want the noise floor, and a warm-up
// run is implied by discarding slower repetitions.
func bestOf(reps int, fn func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		ms := float64(time.Since(t0).Microseconds()) / 1e3
		if r == 0 || ms < best {
			best = ms
		}
	}
	return best
}

func randDense(rows, cols int, seed int64) *tensor.Dense {
	d := tensor.NewDense(rows, cols)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := range d.Data {
		// xorshift keeps the generator dependency-free and deterministic.
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		d.Data[i] = float32(int32(s))/(1<<31)*0.5 + 0.25
	}
	return d
}

func benchCSR(n, degree int) *sparse.CSR {
	entries := make([]sparse.Coo, 0, n*degree)
	s := uint64(12345)
	for u := 0; u < n; u++ {
		for d := 0; d < degree; d++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			entries = append(entries, sparse.Coo{
				Row: int32(u), Col: int32(s % uint64(n)), Val: 1,
			})
		}
	}
	return sparse.FromCoo(n, n, entries, true)
}
