// Command mggcn-train trains a GCN on a catalog dataset with MG-GCN across
// the simulated GPUs of a DGX-class machine, printing per-epoch loss,
// accuracy, and the simulated epoch time.
//
//	mggcn-train -dataset cora -gpus 4 -epochs 50
//	mggcn-train -dataset products -gpus 8 -machine a100 -phantom
//	mggcn-train -synthetic -n 2000 -degree 16 -classes 8 -features 32
//	mggcn-train -dataset cora -gpus 4 -sampled -batch 256 -fanouts 5,10 -layers 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"mggcn"
)

func main() {
	var (
		dataset   = flag.String("dataset", "cora", "catalog dataset: "+strings.Join(mggcn.DatasetNames(), ", "))
		machine   = flag.String("machine", "a100", "machine: v100 or a100")
		gpus      = flag.Int("gpus", 1, "number of GPUs (1-8)")
		epochs    = flag.Int("epochs", 20, "training epochs")
		hidden    = flag.Int("hidden", 512, "hidden layer width")
		layers    = flag.Int("layers", 2, "layer count")
		lr        = flag.Float64("lr", 0.01, "Adam learning rate")
		phantom   = flag.Bool("phantom", false, "structure-only run: timing and memory, no real math")
		noPermute = flag.Bool("no-permute", false, "disable §5.2 random permutation")
		noOverlap = flag.Bool("no-overlap", false, "disable §4.3 comm/compute overlap")
		strategy  = flag.String("strategy", "1d-row", "partitioning strategy: 1d-row, 1d-col, 1.5d")
		ordering  = flag.String("ordering", "default", "vertex ordering: default, natural, random, degree, bfs, cyclic")
		balanced  = flag.Bool("balanced-cuts", false, "cut partitions at equal degree instead of equal vertices")
		saveCkpt  = flag.String("save-checkpoint", "", "write model+optimizer state here after training")
		loadCkpt  = flag.String("load-checkpoint", "", "restore model+optimizer state before training")
		sampled   = flag.Bool("sampled", false, "sampled-minibatch training (GNNLab-style sampler pipeline)")
		batch     = flag.Int("batch", 512, "sampled: target vertices per minibatch")
		fanouts   = flag.String("fanouts", "5,10,15", "sampled: per-layer neighbor fanouts, outermost first (sets the layer count unless -layers is given)")
		cacheFrac = flag.Float64("cache-frac", 0.5, "sampled: fraction of feature rows cached per device, hottest first")
		patience  = flag.Int("patience", 0, "sampled: stop after this many epochs without val-accuracy improvement (0 disables)")
		saveData  = flag.String("save-dataset", "", "write the dataset in binary form and exit")
		synthetic = flag.Bool("synthetic", false, "train on a synthetic BTER graph instead of the catalog")
		n         = flag.Int("n", 2000, "synthetic: vertex count")
		degree    = flag.Float64("degree", 16, "synthetic: average degree")
		features  = flag.Int("features", 32, "synthetic: feature width")
		classes   = flag.Int("classes", 8, "synthetic: class count")
		seed      = flag.Uint64("seed", 42, "synthetic: generator seed")
	)
	flag.Parse()

	var spec mggcn.MachineSpec
	switch strings.ToLower(*machine) {
	case "v100", "dgx-1", "dgx-v100":
		spec = mggcn.DGXV100()
	case "a100", "dgx-a100":
		spec = mggcn.DGXA100()
	default:
		log.Fatalf("unknown machine %q (want v100 or a100)", *machine)
	}

	var ds *mggcn.Dataset
	var err error
	if *synthetic {
		ds = mggcn.SynthesizeDataset("synthetic", *n, *degree, *features, *classes, *seed, *phantom)
	} else {
		ds, err = mggcn.LoadDataset(*dataset, *phantom)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("dataset %s: n=%d m=%d k=%.1f features=%d classes=%d scale=1/%d\n",
		ds.Name(), ds.N(), ds.M(), ds.AvgDegree(), ds.FeatDim(), ds.Classes(), ds.Scale())

	if *saveData != "" {
		f, err := os.Create(*saveData)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.WriteBinary(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote dataset to %s\n", *saveData)
		return
	}

	if *sampled {
		// -layers and -fanouts must agree in sampled mode; when only one was
		// given explicitly, the other follows it instead of fighting its
		// default (the fanout list trims from the outermost hop).
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		sampledLayers, fanoutStr := *layers, *fanouts
		if explicit["layers"] && !explicit["fanouts"] {
			parts := strings.Split(fanoutStr, ",")
			if *layers < len(parts) {
				fanoutStr = strings.Join(parts[len(parts)-*layers:], ",")
			}
		} else if !explicit["layers"] {
			sampledLayers = len(strings.Split(fanoutStr, ","))
		}
		runSampled(ds, spec, *gpus, *epochs, *hidden, sampledLayers, *lr,
			*batch, fanoutStr, *cacheFrac, *patience, *saveCkpt, *loadCkpt)
		return
	}

	o := mggcn.DefaultOptions(spec, *gpus)
	o.Hidden, o.Layers, o.LR = *hidden, *layers, *lr
	o.Permute = !*noPermute
	o.Overlap = !*noOverlap
	switch strings.ToLower(*strategy) {
	case "1d-row", "row":
		o.Strategy = mggcn.Strategy1DRow
	case "1d-col", "col":
		o.Strategy = mggcn.Strategy1DCol
	case "1.5d", "15d":
		o.Strategy = mggcn.Strategy15D
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	switch strings.ToLower(*ordering) {
	case "default":
		o.Ordering = mggcn.OrderingDefault
	case "natural":
		o.Ordering = mggcn.OrderingNatural
	case "random":
		o.Ordering = mggcn.OrderingRandom
	case "degree":
		o.Ordering = mggcn.OrderingDegreeSorted
	case "bfs":
		o.Ordering = mggcn.OrderingBFS
	case "cyclic":
		o.Ordering = mggcn.OrderingBlockCyclic
	default:
		log.Fatalf("unknown ordering %q", *ordering)
	}
	o.BalancedPartition = *balanced
	tr, err := mggcn.NewTrainer(ds, o)
	if err != nil {
		if mggcn.IsOOM(err) {
			log.Fatalf("out of memory on %s with %d GPUs: %v", spec.Name, *gpus, err)
		}
		log.Fatal(err)
	}
	fmt.Printf("training %d layers (hidden %d) on %d GPUs of %s (%s); %d buffers/device, peak %d MiB/device\n",
		o.Layers, o.Hidden, *gpus, spec.Name, *strategy, tr.BufferCount(), tr.PeakMemoryBytes()>>20)
	if *loadCkpt != "" {
		f, err := os.Open(*loadCkpt)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.LoadCheckpoint(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("restored checkpoint from %s\n", *loadCkpt)
	}

	stats, trainErr := tr.Train(*epochs)
	var total float64
	for e, s := range stats {
		total += s.EpochSeconds
		if ds.IsPhantom() {
			fmt.Printf("epoch %3d: sim %.4fs\n", e+1, s.EpochSeconds)
		} else {
			fmt.Printf("epoch %3d: loss %.4f train-acc %.4f test-acc %.4f sim %.4fs\n",
				e+1, s.Loss, s.TrainAcc, s.TestAcc, s.EpochSeconds)
		}
	}
	if trainErr != nil {
		log.Fatalf("training failed after %d epochs: %v", len(stats), trainErr)
	}
	fmt.Printf("total simulated training time: %.3fs (%.4fs/epoch)\n", total, total/float64(*epochs))
	if *saveCkpt != "" {
		if err := mggcn.SaveCheckpointAtomic(*saveCkpt, tr.SaveCheckpoint); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved checkpoint to %s\n", *saveCkpt)
	}
}

// runSampled is the -sampled mode: the factored sampler/trainer pipeline,
// with mid-epoch resumable checkpoints and optional early stopping on
// validation accuracy.
func runSampled(ds *mggcn.Dataset, spec mggcn.MachineSpec, gpus, epochs, hidden, layers int,
	lr float64, batch int, fanoutStr string, cacheFrac float64, patience int,
	saveCkpt, loadCkpt string) {
	o := mggcn.DefaultSampledOptions(spec, gpus)
	o.Hidden, o.Layers, o.LR = hidden, layers, lr
	o.Batch, o.CacheFrac = batch, cacheFrac
	o.EarlyStopPatience = patience
	o.TrackVal = patience > 0
	o.Fanouts = nil
	for _, s := range strings.Split(fanoutStr, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -fanouts %q: %v", fanoutStr, err)
		}
		o.Fanouts = append(o.Fanouts, f)
	}
	tr, err := mggcn.NewSampledTrainer(ds, o)
	if err != nil {
		if mggcn.IsOOM(err) {
			log.Fatalf("out of memory on %s with %d GPUs: %v", spec.Name, gpus, err)
		}
		log.Fatal(err)
	}
	fmt.Printf("sampled training: %d layers (hidden %d) batch %d fanouts %v cache %.0f%% on %d GPUs of %s\n",
		o.Layers, o.Hidden, o.Batch, o.Fanouts, o.CacheFrac*100, gpus, spec.Name)
	if loadCkpt != "" {
		f, err := os.Open(loadCkpt)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.LoadCheckpoint(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("restored sampled checkpoint from %s\n", loadCkpt)
	}

	stats, trainErr := tr.Train(epochs)
	var total float64
	for e, s := range stats {
		total += s.EpochSeconds
		line := fmt.Sprintf("epoch %3d: loss %.4f train-acc %.4f", e+1, s.Loss, s.TrainAcc)
		if o.TrackVal {
			line += fmt.Sprintf(" val-acc %.4f", s.ValAcc)
		}
		fmt.Printf("%s sim %.4fs\n", line, s.EpochSeconds)
	}
	if trainErr != nil {
		log.Fatalf("sampled training failed after %d epochs: %v", len(stats), trainErr)
	}
	if len(stats) < epochs {
		fmt.Printf("early stop: no val-accuracy improvement in %d epochs\n", patience)
	}
	fmt.Printf("total simulated training time: %.3fs (%.4fs/epoch)\n", total, total/float64(len(stats)))
	if saveCkpt != "" {
		if err := mggcn.SaveCheckpointAtomic(saveCkpt, tr.SaveCheckpoint); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved sampled checkpoint to %s\n", saveCkpt)
	}
}
