// Command mggcn-bench regenerates the paper's tables and figures. With no
// flags it runs every registered experiment and prints each report; use
// -exp to select a comma-separated subset and -list to enumerate them.
//
//	mggcn-bench                  # run everything (several minutes)
//	mggcn-bench -exp fig6,fig8   # just the timeline figures
//	mggcn-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mggcn"
)

func main() {
	var (
		exp  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	all := mggcn.Experiments()
	if *list {
		for _, e := range all {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}
	selected := map[string]bool{}
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	failed := 0
	for _, e := range all {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		start := time.Now()
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "[%s] FAILED: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("=== %s — %s (ran in %s) ===\n%s\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond), res.Text)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
