// Command mggcn-chaos sweeps seeded fault scenarios across the shipped SpMM
// strategies (1D-row, 1D-col, 1.5D) and the distributed GAT forward,
// reporting each scenario's outcome as JSON: did the run survive (recover
// and match the fault-free result), abort (fail with a clean error), or
// corrupt (finish with wrong or non-finite numbers)?
//
//	mggcn-chaos                     # full matrix, 2 seeds each
//	mggcn-chaos -seeds 4 -epochs 6
//	mggcn-chaos -strategy 1d-row -fault crash
//
// Every scenario carries an expected outcome — crash and retried-transient
// runs must survive, exhausted-retry runs must abort cleanly, nothing may
// ever corrupt — and the process exits 1 if any scenario deviates, so the
// CI chaos job is a real gate, not a report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"mggcn/internal/comm"
	"mggcn/internal/core"
	"mggcn/internal/fault"
	"mggcn/internal/gen"
	"mggcn/internal/graph"
	"mggcn/internal/nn"
	"mggcn/internal/sim"
	"mggcn/internal/tensor"
)

// scenario is one row of the JSON matrix.
type scenario struct {
	Strategy string  `json:"strategy"`
	Fault    string  `json:"fault"`
	Seed     int64   `json:"seed"`
	Outcome  string  `json:"outcome"` // survive | abort | corrupt
	Expected string  `json:"expected"`
	Detail   string  `json:"detail,omitempty"`
	FinalP   int     `json:"final_p,omitempty"`
	Epochs   int     `json:"effective_epochs,omitempty"`
	Loss     float64 `json:"final_loss,omitempty"`

	Events   []core.RecoveryEvent `json:"recovery_events,omitempty"`
	Injected fault.Stats          `json:"injected"`
}

type report struct {
	Machine   string     `json:"machine"`
	GPUs      int        `json:"gpus"`
	Epochs    int        `json:"epochs"`
	Scenarios []scenario `json:"scenarios"`
	Failures  int        `json:"failures"`
}

var gcnStrategies = map[string]core.Strategy{
	"1d-row": core.Strategy1DRow,
	"1d-col": core.Strategy1DCol,
	"1.5d":   core.Strategy15D,
}

// faultKinds in sweep order. "transient" stays under the retry budget;
// "transient-exhaust" exceeds it and must abort cleanly.
var faultKinds = []string{"crash", "transient", "transient-exhaust", "straggler", "poison"}

func main() {
	var (
		machine  = flag.String("machine", "a100", "machine: v100 or a100")
		gpus     = flag.Int("gpus", 4, "number of GPUs (2-8)")
		epochs   = flag.Int("epochs", 4, "effective training epochs per scenario")
		seeds    = flag.Int("seeds", 2, "fault seeds per scenario")
		strategy = flag.String("strategy", "all", "1d-row, 1d-col, 1.5d, gat, or all")
		kind     = flag.String("fault", "all", strings.Join(faultKinds, ", ")+", or all")
		expect   = flag.Bool("expect", true, "exit 1 when an outcome deviates from its expectation")
	)
	flag.Parse()

	var spec sim.MachineSpec
	switch strings.ToLower(*machine) {
	case "v100", "dgx-1", "dgx-v100":
		spec = sim.DGXV100()
	case "a100", "dgx-a100":
		spec = sim.DGXA100()
	default:
		log.Fatalf("unknown machine %q (want v100 or a100)", *machine)
	}
	if *gpus < 2 {
		log.Fatalf("chaos needs at least 2 GPUs (a 1-GPU machine has no survivors)")
	}

	g := gen.Generate("chaos", gen.DefaultBTER(160, 8, 99), 12, 4, false)
	rep := report{Machine: spec.Name, GPUs: *gpus, Epochs: *epochs}

	kinds := faultKinds
	if *kind != "all" {
		kinds = []string{*kind}
	}
	for name := range gcnStrategies {
		if *strategy != "all" && *strategy != name {
			continue
		}
		for _, fk := range kinds {
			for s := int64(1); s <= int64(*seeds); s++ {
				rep.Scenarios = append(rep.Scenarios, runGCN(g, spec, *gpus, *epochs, name, fk, s))
			}
		}
	}
	if *strategy == "all" || *strategy == "gat" {
		for _, fk := range kinds {
			if fk == "poison" {
				// The GAT forward has no numeric-recovery loop to exercise;
				// poison coverage lives in the GCN scenarios.
				continue
			}
			for s := int64(1); s <= int64(*seeds); s++ {
				rep.Scenarios = append(rep.Scenarios, runGAT(g, spec, *gpus, fk, s))
			}
		}
	}

	for i := range rep.Scenarios {
		if rep.Scenarios[i].Outcome != rep.Scenarios[i].Expected {
			rep.Failures++
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if *expect && rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "mggcn-chaos: %d scenario(s) deviated from expectation\n", rep.Failures)
		os.Exit(1)
	}
}

// chaosConfig is the shared scenario configuration: small model, real math.
func chaosConfig(spec sim.MachineSpec, p int) core.Config {
	cfg := core.DefaultConfig(spec, p, 1<<20)
	cfg.MemScale = 1
	cfg.Hidden = 16
	cfg.Layers = 2
	cfg.LR = 0.01
	cfg.Seed = 7
	cfg.SkipFirstBackward = false
	return cfg
}

// plan builds the injector plan for one fault kind at one seed.
func plan(fk string, seed int64, p int) fault.Plan {
	pl := fault.Plan{Seed: seed}
	switch fk {
	case "crash":
		pl.Crash = &fault.CrashSpec{Device: p - 1, OnLabel: "bwd"}
	case "transient":
		pl.Transient = &fault.TransientSpec{Every: 2, Failures: 2}
	case "transient-exhaust":
		pl.Transient = &fault.TransientSpec{Every: 2, Failures: 100}
	case "straggler":
		pl.Straggler = &fault.StragglerSpec{Device: 1, Delay: 50 * time.Microsecond, Every: 5}
	case "poison":
		// The last forward GeMM feeds the logits directly (an earlier layer's
		// NaN would be laundered by the ReLU).
		pl.Poison = &fault.PoisonSpec{Label: "fwd1/gemm", Stage: -1, Device: 0, Occurrence: 1}
	default:
		log.Fatalf("unknown fault kind %q", fk)
	}
	return pl
}

// expectation returns the contract each scenario is judged against.
func expectation(fk string) string {
	if fk == "transient-exhaust" {
		return "abort"
	}
	return "survive"
}

// baselines caches the fault-free loss curve per strategy.
var baselines = map[string][]float64{}

func baseline(g *graph.Graph, spec sim.MachineSpec, p, epochs int, name string) []float64 {
	if c, ok := baselines[name]; ok {
		return c
	}
	cfg := chaosConfig(spec, p)
	cfg.Strategy = gcnStrategies[name]
	tr, err := core.NewTrainer(g, cfg)
	if err != nil {
		log.Fatalf("baseline %s: %v", name, err)
	}
	var curve []float64
	for e := 0; e < epochs; e++ {
		s, err := tr.RunEpoch()
		if err != nil {
			log.Fatalf("baseline %s epoch %d: %v", name, e, err)
		}
		curve = append(curve, s.Loss)
	}
	baselines[name] = curve
	return curve
}

func runGCN(g *graph.Graph, spec sim.MachineSpec, p, epochs int, name, fk string, seed int64) scenario {
	sc := scenario{Strategy: name, Fault: fk, Seed: seed, Expected: expectation(fk)}
	clean := baseline(g, spec, p, epochs, name)

	inj := fault.New(plan(fk, seed, p))
	cfg := chaosConfig(spec, p)
	cfg.Strategy = gcnStrategies[name]
	cfg.Fault = inj
	cfg.Retry = comm.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond, Multiplier: 2}
	res, err := core.TrainElastic(g, cfg, epochs)
	sc.Injected = inj.Stats()
	if res != nil {
		sc.FinalP = res.FinalP
		sc.Epochs = len(res.Stats)
		sc.Events = res.Events
		if n := len(res.Stats); n > 0 {
			sc.Loss = res.Stats[n-1].Loss
		}
	}
	switch {
	case err != nil:
		sc.Outcome = "abort"
		sc.Detail = err.Error()
	case len(res.Stats) != epochs || math.IsNaN(sc.Loss) || math.IsInf(sc.Loss, 0):
		sc.Outcome = "corrupt"
		sc.Detail = fmt.Sprintf("finished %d/%d epochs, final loss %v", len(res.Stats), epochs, sc.Loss)
	case fk == "transient" || fk == "straggler" || fk == "poison":
		// Full-strength recoveries: the run must be bit-identical to
		// fault-free (retries move data exactly once; the poison re-run
		// starts from the epoch-start snapshot).
		sc.Outcome = "survive"
		for e := range clean {
			if res.Stats[e].Loss != clean[e] { // vet:ok floateq: retried-fault parity is bit-exact by contract
				sc.Outcome = "corrupt"
				sc.Detail = fmt.Sprintf("epoch %d loss %v != fault-free %v", e, res.Stats[e].Loss, clean[e])
				break
			}
		}
	default: // crash: degraded but alive, one device down
		if sc.FinalP == p-1 {
			sc.Outcome = "survive"
		} else {
			sc.Outcome = "corrupt"
			sc.Detail = fmt.Sprintf("expected group of %d after device loss, got %d", p-1, sc.FinalP)
		}
	}
	return sc
}

var (
	gatBaseline *tensor.Dense
	gatShared   *nn.GAT
)

func gatModel(g *graph.Graph) *nn.GAT {
	if gatShared == nil {
		gatShared = nn.NewGAT(g, nn.LayerDims(g.FeatDim, 16, 2, g.Classes), 3)
	}
	return gatShared
}

func runGAT(g *graph.Graph, spec sim.MachineSpec, p int, fk string, seed int64) scenario {
	sc := scenario{Strategy: "gat", Fault: fk, Seed: seed, Expected: expectation(fk)}
	if fk == "crash" {
		// The GAT path is forward-only with no elastic loop: a lost device
		// must surface as a clean abort, never as silent garbage.
		sc.Expected = "abort"
	}
	model := gatModel(g)
	if gatBaseline == nil {
		d, err := core.NewGATDist(g, model, chaosConfig(spec, p))
		if err != nil {
			log.Fatalf("gat baseline: %v", err)
		}
		logits, _, err := d.Forward()
		if err != nil {
			log.Fatalf("gat baseline forward: %v", err)
		}
		gatBaseline = logits
	}

	pl := plan(fk, seed, p)
	if pl.Crash != nil {
		// The forward-only GAT graph has no backward labels; kill the device
		// on its first task of any kind.
		pl.Crash.OnLabel = ""
	}
	inj := fault.New(pl)
	cfg := chaosConfig(spec, p)
	cfg.Fault = inj
	cfg.Retry = comm.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond, Multiplier: 2}
	d, err := core.NewGATDist(g, model, cfg)
	if err != nil {
		log.Fatalf("gat %s: %v", fk, err)
	}
	logits, _, err := d.Forward()
	sc.Injected = inj.Stats()
	switch {
	case err != nil:
		sc.Outcome = "abort"
		sc.Detail = err.Error()
	case tensor.MaxAbsDiff(logits, gatBaseline) != 0:
		sc.Outcome = "corrupt"
		sc.Detail = fmt.Sprintf("logits diverge from fault-free by %g", tensor.MaxAbsDiff(logits, gatBaseline))
	default:
		sc.Outcome = "survive"
	}
	return sc
}
