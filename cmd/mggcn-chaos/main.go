// Command mggcn-chaos sweeps seeded fault scenarios across the shipped SpMM
// strategies (1D-row, 1D-col, 1.5D), the distributed GAT forward, and the
// sampled-minibatch pipeline, reporting each scenario's outcome as JSON: did
// the run survive (recover and match the fault-free result), abort (fail
// with a clean error), or corrupt (finish with wrong or non-finite
// numbers)?
//
//	mggcn-chaos                     # full matrix, 2 seeds each
//	mggcn-chaos -seeds 4 -epochs 6
//	mggcn-chaos -strategy 1d-row -fault crash
//	mggcn-chaos -strategy sampled -fault flaky-sampler
//
// Every scenario carries an expected outcome — crash and retried-transient
// runs must survive, exhausted-retry runs must abort cleanly (except the
// sampled pipeline, whose suspect-eviction rule survives them at P-1),
// nothing may ever corrupt — and the process exits 1 if any scenario
// deviates, so the CI chaos job is a real gate, not a report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"mggcn/internal/comm"
	"mggcn/internal/core"
	"mggcn/internal/fault"
	"mggcn/internal/gen"
	"mggcn/internal/graph"
	"mggcn/internal/nn"
	"mggcn/internal/sim"
	"mggcn/internal/tensor"
)

// scenario is one row of the JSON matrix.
type scenario struct {
	Strategy string  `json:"strategy"`
	Fault    string  `json:"fault"`
	Seed     int64   `json:"seed"`
	Outcome  string  `json:"outcome"` // survive | abort | corrupt
	Expected string  `json:"expected"`
	Detail   string  `json:"detail,omitempty"`
	FinalP   int     `json:"final_p,omitempty"`
	Epochs   int     `json:"effective_epochs,omitempty"`
	Loss     float64 `json:"final_loss,omitempty"`

	Events   []core.RecoveryEvent `json:"recovery_events,omitempty"`
	Injected fault.Stats          `json:"injected"`
}

type report struct {
	Machine   string     `json:"machine"`
	GPUs      int        `json:"gpus"`
	Epochs    int        `json:"epochs"`
	Scenarios []scenario `json:"scenarios"`
	Failures  int        `json:"failures"`
}

var gcnStrategies = map[string]core.Strategy{
	"1d-row": core.Strategy1DRow,
	"1d-col": core.Strategy1DCol,
	"1.5d":   core.Strategy15D,
}

// faultKinds in sweep order. "transient" stays under the retry budget;
// "transient-exhaust" exceeds it and must abort cleanly.
var faultKinds = []string{"crash", "transient", "transient-exhaust", "straggler", "poison"}

// sampledFaultKinds adds "flaky-sampler" — a transient sampler-stage
// failure only the minibatch pipeline can experience.
var sampledFaultKinds = []string{"crash", "flaky-sampler", "transient", "transient-exhaust", "straggler", "poison"}

func inKinds(kinds []string, fk string) bool {
	for _, k := range kinds {
		if k == fk {
			return true
		}
	}
	return false
}

func main() {
	var (
		machine  = flag.String("machine", "a100", "machine: v100 or a100")
		gpus     = flag.Int("gpus", 4, "number of GPUs (2-8)")
		epochs   = flag.Int("epochs", 4, "effective training epochs per scenario")
		seeds    = flag.Int("seeds", 2, "fault seeds per scenario")
		strategy = flag.String("strategy", "all", "1d-row, 1d-col, 1.5d, gat, sampled, or all")
		kind     = flag.String("fault", "all", strings.Join(sampledFaultKinds, ", ")+", or all")
		expect   = flag.Bool("expect", true, "exit 1 when an outcome deviates from its expectation")
	)
	flag.Parse()

	var spec sim.MachineSpec
	switch strings.ToLower(*machine) {
	case "v100", "dgx-1", "dgx-v100":
		spec = sim.DGXV100()
	case "a100", "dgx-a100":
		spec = sim.DGXA100()
	default:
		log.Fatalf("unknown machine %q (want v100 or a100)", *machine)
	}
	if *gpus < 2 {
		log.Fatalf("chaos needs at least 2 GPUs (a 1-GPU machine has no survivors)")
	}

	g := gen.Generate("chaos", gen.DefaultBTER(160, 8, 99), 12, 4, false)
	rep := report{Machine: spec.Name, GPUs: *gpus, Epochs: *epochs}

	kinds := sampledFaultKinds // superset; each matrix filters to its own kinds
	if *kind != "all" {
		kinds = []string{*kind}
	}
	for name := range gcnStrategies {
		if *strategy != "all" && *strategy != name {
			continue
		}
		for _, fk := range kinds {
			if !inKinds(faultKinds, fk) {
				continue
			}
			for s := int64(1); s <= int64(*seeds); s++ {
				rep.Scenarios = append(rep.Scenarios, runGCN(g, spec, *gpus, *epochs, name, fk, s))
			}
		}
	}
	if *strategy == "all" || *strategy == "gat" {
		for _, fk := range kinds {
			if fk == "poison" || !inKinds(faultKinds, fk) {
				// The GAT forward has no numeric-recovery loop to exercise;
				// poison coverage lives in the GCN scenarios.
				continue
			}
			for s := int64(1); s <= int64(*seeds); s++ {
				rep.Scenarios = append(rep.Scenarios, runGAT(g, spec, *gpus, fk, s))
			}
		}
	}
	if *strategy == "all" || *strategy == "sampled" {
		for _, fk := range kinds {
			if !inKinds(sampledFaultKinds, fk) {
				continue
			}
			for s := int64(1); s <= int64(*seeds); s++ {
				rep.Scenarios = append(rep.Scenarios, runSampled(g, spec, *gpus, *epochs, fk, s))
			}
		}
	}

	for i := range rep.Scenarios {
		if rep.Scenarios[i].Outcome != rep.Scenarios[i].Expected {
			rep.Failures++
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if *expect && rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "mggcn-chaos: %d scenario(s) deviated from expectation\n", rep.Failures)
		os.Exit(1)
	}
}

// chaosConfig is the shared scenario configuration: small model, real math.
func chaosConfig(spec sim.MachineSpec, p int) core.Config {
	cfg := core.DefaultConfig(spec, p, 1<<20)
	cfg.MemScale = 1
	cfg.Hidden = 16
	cfg.Layers = 2
	cfg.LR = 0.01
	cfg.Seed = 7
	cfg.SkipFirstBackward = false
	return cfg
}

// plan builds the injector plan for one fault kind at one seed.
func plan(fk string, seed int64, p int) fault.Plan {
	pl := fault.Plan{Seed: seed}
	switch fk {
	case "crash":
		pl.Crash = &fault.CrashSpec{Device: p - 1, OnLabel: "bwd"}
	case "transient":
		pl.Transient = &fault.TransientSpec{Every: 2, Failures: 2}
	case "transient-exhaust":
		pl.Transient = &fault.TransientSpec{Every: 2, Failures: 100}
	case "straggler":
		pl.Straggler = &fault.StragglerSpec{Device: 1, Delay: 50 * time.Microsecond, Every: 5}
	case "poison":
		// The last forward GeMM feeds the logits directly (an earlier layer's
		// NaN would be laundered by the ReLU).
		pl.Poison = &fault.PoisonSpec{Label: "fwd1/gemm", Stage: -1, Device: 0, Occurrence: 1}
	default:
		log.Fatalf("unknown fault kind %q", fk)
	}
	return pl
}

// expectation returns the contract each scenario is judged against.
func expectation(fk string) string {
	if fk == "transient-exhaust" {
		return "abort"
	}
	return "survive"
}

// baselines caches the fault-free loss curve per strategy.
var baselines = map[string][]float64{}

func baseline(g *graph.Graph, spec sim.MachineSpec, p, epochs int, name string) []float64 {
	if c, ok := baselines[name]; ok {
		return c
	}
	cfg := chaosConfig(spec, p)
	cfg.Strategy = gcnStrategies[name]
	tr, err := core.NewTrainer(g, cfg)
	if err != nil {
		log.Fatalf("baseline %s: %v", name, err)
	}
	var curve []float64
	for e := 0; e < epochs; e++ {
		s, err := tr.RunEpoch()
		if err != nil {
			log.Fatalf("baseline %s epoch %d: %v", name, e, err)
		}
		curve = append(curve, s.Loss)
	}
	baselines[name] = curve
	return curve
}

func runGCN(g *graph.Graph, spec sim.MachineSpec, p, epochs int, name, fk string, seed int64) scenario {
	sc := scenario{Strategy: name, Fault: fk, Seed: seed, Expected: expectation(fk)}
	clean := baseline(g, spec, p, epochs, name)

	inj := fault.New(plan(fk, seed, p))
	cfg := chaosConfig(spec, p)
	cfg.Strategy = gcnStrategies[name]
	cfg.Fault = inj
	cfg.Retry = comm.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond, Multiplier: 2}
	res, err := core.TrainElastic(g, cfg, epochs)
	sc.Injected = inj.Stats()
	if res != nil {
		sc.FinalP = res.FinalP
		sc.Epochs = len(res.Stats)
		sc.Events = res.Events
		if n := len(res.Stats); n > 0 {
			sc.Loss = res.Stats[n-1].Loss
		}
	}
	switch {
	case err != nil:
		sc.Outcome = "abort"
		sc.Detail = err.Error()
	case len(res.Stats) != epochs || math.IsNaN(sc.Loss) || math.IsInf(sc.Loss, 0):
		sc.Outcome = "corrupt"
		sc.Detail = fmt.Sprintf("finished %d/%d epochs, final loss %v", len(res.Stats), epochs, sc.Loss)
	case fk == "transient" || fk == "straggler" || fk == "poison":
		// Full-strength recoveries: the run must be bit-identical to
		// fault-free (retries move data exactly once; the poison re-run
		// starts from the epoch-start snapshot).
		sc.Outcome = "survive"
		for e := range clean {
			if res.Stats[e].Loss != clean[e] { // vet:ok floateq: retried-fault parity is bit-exact by contract
				sc.Outcome = "corrupt"
				sc.Detail = fmt.Sprintf("epoch %d loss %v != fault-free %v", e, res.Stats[e].Loss, clean[e])
				break
			}
		}
	default: // crash: degraded but alive, one device down
		if sc.FinalP == p-1 {
			sc.Outcome = "survive"
		} else {
			sc.Outcome = "corrupt"
			sc.Detail = fmt.Sprintf("expected group of %d after device loss, got %d", p-1, sc.FinalP)
		}
	}
	return sc
}

// sampledChaosConfig is the sampled pipeline's scenario configuration —
// small model, small fanouts, real math, pipelining on.
func sampledChaosConfig(spec sim.MachineSpec, p int) core.SampledConfig {
	cfg := core.DefaultSampledConfig(spec, p, 1)
	cfg.Hidden = 16
	cfg.Layers = 2
	cfg.Fanouts = []int{4, 6}
	cfg.Batch = 8
	cfg.CacheFrac = 0.5
	cfg.LR = 0.01
	cfg.Seed = 7
	return cfg
}

// sampledPlan builds the injector plan for one sampled fault kind. The
// crash and straggler scope to the sampler stream — the failure mode the
// full-batch matrix cannot reach.
func sampledPlan(fk string, seed int64, p int) fault.Plan {
	pl := fault.Plan{Seed: seed}
	switch fk {
	case "crash":
		pl.Crash = &fault.CrashSpec{Device: p - 1, OnLabel: "sample", Stream: fault.OnStream(sim.StreamSample)}
	case "flaky-sampler":
		pl.TransientTask = &fault.TransientTaskSpec{
			Device: 0, OnLabel: "s1/sample", Failures: 1,
			Stream: fault.OnStream(sim.StreamSample),
		}
	case "transient":
		pl.Transient = &fault.TransientSpec{Every: 2, Failures: 2}
	case "transient-exhaust":
		pl.Transient = &fault.TransientSpec{Every: 2, Failures: 100}
	case "straggler":
		pl.Straggler = &fault.StragglerSpec{
			Device: 1, Delay: 50 * time.Microsecond, Every: 5,
			Stream: fault.OnStream(sim.StreamSample),
		}
	case "poison":
		pl.Poison = &fault.PoisonSpec{Label: "s0/fwd1/gemm", Stage: -1, Device: 0, Occurrence: 1}
	default:
		log.Fatalf("unknown sampled fault kind %q", fk)
	}
	return pl
}

// sampledBaseline caches the fault-free sampled loss curve per group size.
var sampledBaselines = map[int][]float64{}

func sampledBaseline(g *graph.Graph, spec sim.MachineSpec, p, epochs int) []float64 {
	if c, ok := sampledBaselines[p]; ok {
		return c
	}
	tr, err := core.NewSampledTrainer(g, sampledChaosConfig(spec, p))
	if err != nil {
		log.Fatalf("sampled baseline P=%d: %v", p, err)
	}
	var curve []float64
	for e := 0; e < epochs; e++ {
		s, err := tr.RunEpoch()
		if err != nil {
			log.Fatalf("sampled baseline P=%d epoch %d: %v", p, e, err)
		}
		curve = append(curve, s.Loss)
	}
	sampledBaselines[p] = curve
	return curve
}

func runSampled(g *graph.Graph, spec sim.MachineSpec, p, epochs int, fk string, seed int64) scenario {
	// Unlike the full-batch matrix, exhausted collectives survive here: the
	// suspect-eviction rule converts retry exhaustion into a device loss at
	// P-1 instead of aborting.
	sc := scenario{Strategy: "sampled", Fault: fk, Seed: seed, Expected: "survive"}
	clean := sampledBaseline(g, spec, p, epochs)

	inj := fault.New(sampledPlan(fk, seed, p))
	cfg := sampledChaosConfig(spec, p)
	cfg.Fault = inj
	cfg.Retry = comm.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond, Multiplier: 2}
	res, err := core.TrainSampledElastic(g, cfg, epochs)
	sc.Injected = inj.Stats()
	if res != nil {
		sc.FinalP = res.FinalP
		sc.Epochs = len(res.Stats)
		sc.Events = res.Events
		if n := len(res.Stats); n > 0 {
			sc.Loss = res.Stats[n-1].Loss
		}
	}
	switch {
	case err != nil:
		sc.Outcome = "abort"
		sc.Detail = err.Error()
	case len(res.Stats) != epochs || math.IsNaN(sc.Loss) || math.IsInf(sc.Loss, 0):
		sc.Outcome = "corrupt"
		sc.Detail = fmt.Sprintf("finished %d/%d epochs, final loss %v", len(res.Stats), epochs, sc.Loss)
	case fk == "transient" || fk == "straggler" || fk == "poison" || fk == "flaky-sampler":
		// Same-P recoveries: the deterministic batch replay must leave the
		// run bit-identical to fault-free.
		sc.Outcome = "survive"
		for e := range clean {
			if res.Stats[e].Loss != clean[e] { // vet:ok floateq: deterministic replay parity is bit-exact by contract
				sc.Outcome = "corrupt"
				sc.Detail = fmt.Sprintf("epoch %d loss %v != fault-free %v", e, res.Stats[e].Loss, clean[e])
				break
			}
		}
	default: // crash, transient-exhaust: degraded but alive, one device down
		if sc.FinalP == p-1 {
			sc.Outcome = "survive"
		} else {
			sc.Outcome = "corrupt"
			sc.Detail = fmt.Sprintf("expected group of %d after device loss, got %d", p-1, sc.FinalP)
		}
	}
	return sc
}

var (
	gatBaseline *tensor.Dense
	gatShared   *nn.GAT
)

func gatModel(g *graph.Graph) *nn.GAT {
	if gatShared == nil {
		gatShared = nn.NewGAT(g, nn.LayerDims(g.FeatDim, 16, 2, g.Classes), 3)
	}
	return gatShared
}

func runGAT(g *graph.Graph, spec sim.MachineSpec, p int, fk string, seed int64) scenario {
	sc := scenario{Strategy: "gat", Fault: fk, Seed: seed, Expected: expectation(fk)}
	if fk == "crash" {
		// The GAT path is forward-only with no elastic loop: a lost device
		// must surface as a clean abort, never as silent garbage.
		sc.Expected = "abort"
	}
	model := gatModel(g)
	if gatBaseline == nil {
		d, err := core.NewGATDist(g, model, chaosConfig(spec, p))
		if err != nil {
			log.Fatalf("gat baseline: %v", err)
		}
		logits, _, err := d.Forward()
		if err != nil {
			log.Fatalf("gat baseline forward: %v", err)
		}
		gatBaseline = logits
	}

	pl := plan(fk, seed, p)
	if pl.Crash != nil {
		// The forward-only GAT graph has no backward labels; kill the device
		// on its first task of any kind.
		pl.Crash.OnLabel = ""
	}
	inj := fault.New(pl)
	cfg := chaosConfig(spec, p)
	cfg.Fault = inj
	cfg.Retry = comm.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond, Multiplier: 2}
	d, err := core.NewGATDist(g, model, cfg)
	if err != nil {
		log.Fatalf("gat %s: %v", fk, err)
	}
	logits, _, err := d.Forward()
	sc.Injected = inj.Stats()
	switch {
	case err != nil:
		sc.Outcome = "abort"
		sc.Detail = err.Error()
	case tensor.MaxAbsDiff(logits, gatBaseline) != 0:
		sc.Outcome = "corrupt"
		sc.Detail = fmt.Sprintf("logits diverge from fault-free by %g", tensor.MaxAbsDiff(logits, gatBaseline))
	default:
		sc.Outcome = "survive"
	}
	return sc
}
