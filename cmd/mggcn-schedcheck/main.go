// Command mggcn-schedcheck is the symbolic schedule verifier: it records
// one real epoch graph per shipped strategy and proves three static
// properties without executing a single kernel closure (internal/schedcheck):
//
//   - collective matching: every comm task carries a well-formed collective
//     annotation, and overlapping-but-distinct communicators are
//     happens-before ordered — the deadlock-freedom certificate;
//   - shape-flow typing: symbolic tensor extents propagate through every
//     SpMM/GeMM/elementwise/collective bind and must unify, which catches
//     the 1.5D-style slab-aliasing bug class before any simulation runs;
//   - cost certification: the schedule's annotated communication volume
//     equals the strategy's registered CAGNET-style closed form, and both
//     equal the comm.Meter byte counters measured at issue time, with
//     exact integer equality.
//
// Every strategy is additionally re-verified on its elastic P-1 degradation
// path (the post-device-loss rebuild, with 1.5D degrading to 1D-row at odd
// P), so the schedules produced after a failure are certified too.
//
// Usage:
//
//	go run ./cmd/mggcn-schedcheck                    # verify every strategy
//	go run ./cmd/mggcn-schedcheck -strategy 1.5d -gpus 8
//	go run ./cmd/mggcn-schedcheck -memscale 3        # re-check at S != 1
//
// Exits 0 when every property holds and 1 on any finding.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mggcn/internal/baseline"
	"mggcn/internal/comm"
	"mggcn/internal/core"
	"mggcn/internal/gen"
	"mggcn/internal/graph"
	"mggcn/internal/nn"
	"mggcn/internal/schedcheck"
	"mggcn/internal/sim"
)

func main() {
	var (
		machine  = flag.String("machine", "a100", "machine: v100 or a100")
		gpus     = flag.Int("gpus", 4, "number of GPUs (1-8)")
		strategy = flag.String("strategy", "all", "1d-row, 1d-col, 1.5d, gat, cagnet, or all")
		hidden   = flag.Int("hidden", 16, "hidden layer width")
		layers   = flag.Int("layers", 2, "layer count")
		n        = flag.Int("n", 160, "synthetic vertex count")
		degree   = flag.Int("degree", 8, "synthetic average degree")
		features = flag.Int("features", 12, "synthetic feature width")
		classes  = flag.Int("classes", 4, "synthetic class count")
		memScale = flag.Int("memscale", 1, "dataset scale factor S")
	)
	flag.Parse()

	var spec sim.MachineSpec
	switch strings.ToLower(*machine) {
	case "v100", "dgx-1", "dgx-v100":
		spec = sim.DGXV100()
	case "a100", "dgx-a100":
		spec = sim.DGXA100()
	default:
		log.Fatalf("unknown machine %q (want v100 or a100)", *machine)
	}

	g := gen.Generate("schedcheck", gen.DefaultBTER(*n, float64(*degree), 99), *features, *classes, false)

	names := []string{"1d-row", "1d-col", "1.5d", "gat", "cagnet"}
	if *strategy != "all" {
		ok := false
		for _, s := range names {
			if s == *strategy {
				ok = true
			}
		}
		if !ok {
			log.Fatalf("unknown strategy %q", *strategy)
		}
		names = []string{*strategy}
	}

	cfg := core.DefaultConfig(spec, *gpus, *memScale)
	cfg.Hidden = *hidden
	cfg.Layers = *layers

	findings := 0
	for _, name := range names {
		findings += verifyStrategy(name, g, cfg, *gpus)
		// The elastic degradation path: the trainer rebuilds at P-1 after a
		// device loss, downgrading strategies that no longer validate.
		if p := *gpus - 1; p >= 1 && name != "cagnet" {
			findings += verifyStrategy(degrade(name, p), g, cfg, p)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mggcn-schedcheck: %d finding(s)\n", findings)
		os.Exit(1)
	}
	fmt.Println("mggcn-schedcheck: certified")
}

// degrade mirrors shrinkAfterLoss's strategy fallback: 1.5D needs even P.
func degrade(name string, p int) string {
	if name == "1.5d" && p%2 != 0 {
		return "1d-row"
	}
	return name
}

// verifyStrategy records one epoch of the named strategy at p devices and
// runs all three passes. Returns the finding count.
func verifyStrategy(name string, g *graph.Graph, cfg core.Config, p int) int {
	cfg.P = p
	meter := comm.NewMeter()
	cfg.CommMeter = meter

	var (
		tg   *sim.Graph
		dims []int
	)
	switch name {
	case "1d-row", "1d-col", "1.5d":
		strategies := map[string]core.Strategy{
			"1d-row": core.Strategy1DRow, "1d-col": core.Strategy1DCol, "1.5d": core.Strategy15D,
		}
		cfg.Strategy = strategies[name]
		tr, err := core.NewTrainer(g, cfg)
		if err != nil {
			log.Fatalf("%s@%d: %v", name, p, err)
		}
		if _, err := tr.RunEpoch(); err != nil {
			log.Fatalf("%s@%d: %v", name, p, err)
		}
		tg, dims = tr.LastGraph(), tr.Dims
	case "gat":
		model := nn.NewGAT(g, nn.LayerDims(g.FeatDim, cfg.Hidden, 2, g.Classes), 3)
		dist, err := core.NewGATDist(g, model, cfg)
		if err != nil {
			log.Fatalf("gat@%d: %v", p, err)
		}
		if _, _, err := dist.Forward(); err != nil {
			log.Fatalf("gat@%d: %v", p, err)
		}
		tg, dims = dist.LastGraph(), model.Dims
	case "cagnet":
		c := baseline.NewCAGNET(cfg.Spec, p, cfg.MemScale, cfg.Hidden, cfg.Layers)
		tg = c.EpochGraph(g)
		dims = nn.LayerDims(g.FeatDim, cfg.Hidden, cfg.Layers, g.Classes)
		meter = nil // the baseline prices its own graph; no meter leg
	}

	label := fmt.Sprintf("%s@%d", name, p)
	findings := 0
	for _, f := range schedcheck.Check(tg) {
		fmt.Printf("%s: %v\n", label, f)
		findings++
	}

	vol, err := schedcheck.VolumeForm(name, schedcheck.Model{
		Dims: dims, OrderSwitch: cfg.OrderSwitch, SkipFirstBackward: cfg.SkipFirstBackward,
	})
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	env := schedcheck.EnvFor(g.N(), p, int64(cfg.MemScale), dims)
	for _, f := range schedcheck.CertifyVolume(tg, vol, env) {
		fmt.Printf("%s: %v\n", label, f)
		findings++
	}

	if meter != nil {
		annotated := schedcheck.AnnotatedWords(tg)
		for _, op := range sim.CollOps() {
			if got, want := meter.Words(op), annotated[op]; got != want {
				fmt.Printf("%s: %s: meter measured %d words but annotations claim %d\n", label, op, got, want)
				findings++
			}
		}
	}
	if findings == 0 {
		fmt.Printf("%s: certified (%d tasks)\n", label, len(tg.Tasks))
	}
	return findings
}
