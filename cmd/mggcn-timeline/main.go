// Command mggcn-timeline renders the ASCII Gantt chart of one epoch's SpMM
// schedule for any dataset/machine/configuration — the tool behind the
// paper's Fig 6 (load balance) and Fig 8 (overlap) timelines.
//
//	mggcn-timeline -dataset products -gpus 4 -no-permute   # Fig 6 top
//	mggcn-timeline -dataset products -gpus 4               # Fig 6 bottom
//	mggcn-timeline -dataset products -gpus 4 -overlap      # Fig 8 bottom
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mggcn"
)

func main() {
	var (
		dataset   = flag.String("dataset", "products", "catalog dataset: "+strings.Join(mggcn.DatasetNames(), ", "))
		machine   = flag.String("machine", "v100", "machine: v100 or a100")
		gpus      = flag.Int("gpus", 4, "number of GPUs")
		noPermute = flag.Bool("no-permute", false, "disable the §5.2 permutation")
		overlap   = flag.Bool("overlap", false, "enable §4.3 comm/compute overlap")
		phase     = flag.String("phase", "fwd0/spmm", "task label substring to render")
		width     = flag.Int("width", 76, "chart width in characters")
	)
	flag.Parse()

	var spec mggcn.MachineSpec
	switch strings.ToLower(*machine) {
	case "v100":
		spec = mggcn.DGXV100()
	case "a100":
		spec = mggcn.DGXA100()
	default:
		log.Fatalf("unknown machine %q", *machine)
	}
	ds, err := mggcn.LoadDataset(*dataset, true)
	if err != nil {
		log.Fatal(err)
	}
	o := mggcn.DefaultOptions(spec, *gpus)
	o.Permute = !*noPermute
	o.Overlap = *overlap
	chart, epoch, err := mggcn.Timeline(ds, o, *phase, *width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s, %d GPUs (permute=%t overlap=%t), epoch %.4fs\n",
		*dataset, spec.Name, *gpus, o.Permute, o.Overlap, epoch)
	fmt.Printf("compute rows show SpMM stage digits; comm rows show ~ for broadcasts\n\n%s", chart)
}
