// Command mggcn-datagen generates the synthetic benchmark datasets and
// prints their statistics against the paper's Table 1, including the
// degree-distribution skew that drives the load-balance experiments.
//
//	mggcn-datagen                 # the whole catalog
//	mggcn-datagen -dataset reddit # one dataset, with degree stats
//	mggcn-datagen -degree-family  # the Fig 9 BTER 1x..128x family
package main

import (
	"flag"
	"fmt"
	"log"

	"mggcn"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "single catalog dataset (default: all)")
		family  = flag.Bool("degree-family", false, "generate the Fig 9 degree-scaled family")
	)
	flag.Parse()

	if *family {
		fmt.Println("Fig 9 family: Arxiv degree profile, fixed n, scaled average degree")
		for _, f := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			ds := mggcn.DegreeScaledDataset(f, true)
			fmt.Printf("%-10s n=%-7d m=%-9d k=%.1f\n", ds.Name(), ds.N(), ds.M(), ds.AvgDegree())
		}
		return
	}
	names := mggcn.DatasetNames()
	if *dataset != "" {
		names = []string{*dataset}
	}
	fmt.Printf("%-9s %9s %11s %8s %8s %8s %7s\n", "dataset", "n(gen)", "m(gen)", "k(gen)", "k(paper)", "features", "classes")
	for _, name := range names {
		ds, err := mggcn.LoadDataset(name, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %9d %11d %8.1f %8.1f %8d %7d\n",
			name, ds.N(), ds.M(), ds.AvgDegree(), paperK(name), ds.FeatDim(), ds.Classes())
	}
}

// paperK returns Table 1's average degree for the dataset.
func paperK(name string) float64 {
	return map[string]float64{
		"cora": 3, "arxiv": 7, "papers": 15, "products": 52, "proteins": 150, "reddit": 492,
	}[name]
}
