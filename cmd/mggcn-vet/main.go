// Command mggcn-vet runs the MG-GCN domain-aware static analysis suite
// (internal/analysis) over every package of the module and prints findings
// as file:line:col: rule: message. It exits 0 when clean, 1 on findings,
// and 2 when the module fails to load.
//
// Usage:
//
//	go run ./cmd/mggcn-vet ./...
//	go run ./cmd/mggcn-vet -rules taskdep,bufalias ./...
//
// The package pattern is accepted for familiarity but the tool always
// analyzes the whole module (non-test files only; testdata is skipped).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mggcn/internal/analysis"
)

func main() {
	rulesFlag := flag.String("rules", "", "comma-separated rule subset (default: all)")
	listFlag := flag.Bool("list", false, "list available rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mggcn-vet [-rules r1,r2] [packages]\n\nrules:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *rulesFlag != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*rulesFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mggcn-vet: unknown rule %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	ld, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mggcn-vet:", err)
		os.Exit(2)
	}
	pkgs, err := ld.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mggcn-vet:", err)
		os.Exit(2)
	}

	loadBroken := false
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "mggcn-vet: %s: type error: %v\n", pkg.Path, terr)
			loadBroken = true
		}
		for _, a := range analyzers {
			findings = append(findings, a.Run(pkg)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		// Report paths relative to the module root for stable CI output.
		pos := f.Pos
		if rel, err := filepath.Rel(ld.ModuleRoot, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, f.Rule, f.Msg)
	}
	switch {
	case loadBroken:
		os.Exit(2)
	case len(findings) > 0:
		fmt.Fprintf(os.Stderr, "mggcn-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
