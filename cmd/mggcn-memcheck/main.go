// Command mggcn-memcheck is the static peak-memory certifier, the memory
// twin of mggcn-schedcheck (internal/memcheck, DESIGN.md §6.4). For every
// shipped strategy — including each elastic P-1 degradation and the sampled
// minibatch pipeline — it records one real epoch graph and cross-checks
// three independent derivations of the per-device memory high-water:
//
//   - the closed-form certified peak (exact symbolic bytes over the
//     schedcheck expression algebra, evaluated per device);
//   - the graph-liveness high-water (a happens-before interval analysis
//     over the recorded task access sets, no replay);
//   - the byte-accurate allocation meter measured during the replay
//     (sim.AllocMeter),
//
// all of which must agree byte-exactly, along with the certified resident
// footprint against the device pool's allocated bytes. It then evaluates
// the resident closed forms under analytic full-scale environments to issue
// fit / no-fit verdicts for every catalog dataset against the machine's
// per-GPU memory — the ROADMAP's "does Papers fit at Scale 1?" question.
//
// Usage:
//
//	go run ./cmd/mggcn-memcheck                     # certify every strategy
//	go run ./cmd/mggcn-memcheck -strategy sampled -gpus 2
//	go run ./cmd/mggcn-memcheck -scale 1 -json      # paper-scale verdicts as JSON
//
// Exits 0 when every leg agrees and 1 on any disagreement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mggcn/internal/baseline"
	"mggcn/internal/core"
	"mggcn/internal/gen"
	"mggcn/internal/graph"
	"mggcn/internal/memcheck"
	"mggcn/internal/nn"
	"mggcn/internal/schedcheck"
	"mggcn/internal/sim"
)

// crossCheck is one device's three-way comparison, JSON-ready.
type crossCheck struct {
	Strategy      string `json:"strategy"`
	P             int    `json:"gpus"`
	Device        string `json:"device"`
	CertifiedByte int64  `json:"certified_slab_bytes"`
	LivenessByte  int64  `json:"liveness_slab_bytes"`
	MeterByte     int64  `json:"meter_slab_bytes"`
	SlabCount     int    `json:"certified_slab_count"`
	ResidentByte  int64  `json:"certified_resident_bytes"`
	PoolByte      int64  `json:"pool_used_bytes"`
	OK            bool   `json:"ok"`
}

func main() {
	var (
		machine  = flag.String("machine", "a100", "machine: v100 or a100")
		gpus     = flag.Int("gpus", 4, "number of GPUs (1-8)")
		strategy = flag.String("strategy", "all", "1d-row, 1d-col, 1.5d, gat, sampled, cagnet, or all")
		hidden   = flag.Int("hidden", 16, "hidden layer width")
		layers   = flag.Int("layers", 2, "layer count")
		n        = flag.Int("n", 160, "synthetic vertex count for the cross-check")
		degree   = flag.Int("degree", 8, "synthetic average degree")
		features = flag.Int("features", 12, "synthetic feature width")
		classes  = flag.Int("classes", 4, "synthetic class count")
		scale    = flag.Int("scale", 1, "catalog scale divisor for fit verdicts (1 = paper scale)")
		fitHid   = flag.Int("fit-hidden", 512, "hidden width for fit verdicts")
		format   = flag.String("format", "csr", "sparse format for fit verdicts: csr, sell, auto")
		jsonOut  = flag.Bool("json", false, "emit cross-checks and verdicts as JSON")
	)
	flag.Parse()

	var spec sim.MachineSpec
	switch strings.ToLower(*machine) {
	case "v100", "dgx-1", "dgx-v100":
		spec = sim.DGXV100()
	case "a100", "dgx-a100":
		spec = sim.DGXA100()
	default:
		log.Fatalf("unknown machine %q (want v100 or a100)", *machine)
	}

	g := gen.Generate("memcheck", gen.DefaultBTER(*n, float64(*degree), 99), *features, *classes, false)

	names := []string{"1d-row", "1d-col", "1.5d", "gat", "sampled", "cagnet"}
	if *strategy != "all" {
		ok := false
		for _, s := range names {
			if s == *strategy {
				ok = true
			}
		}
		if !ok {
			log.Fatalf("unknown strategy %q", *strategy)
		}
		names = []string{*strategy}
	}

	cfg := core.DefaultConfig(spec, *gpus, 1)
	cfg.Hidden = *hidden
	cfg.Layers = *layers

	var checks []crossCheck
	findings := 0
	for _, name := range names {
		cs := certifyStrategy(name, g, cfg, *gpus)
		// The elastic degradation path: after a device loss the trainer
		// rebuilds at P-1, downgrading 1.5D to 1D-row at odd P.
		if p := *gpus - 1; p >= 1 && name != "cagnet" && name != "sampled" {
			cs = append(cs, certifyStrategy(degrade(name, p), g, cfg, p)...)
		}
		for _, c := range cs {
			if !c.OK {
				findings++
			}
			if !*jsonOut {
				status := "certified"
				if !c.OK {
					status = "DISAGREES"
				}
				fmt.Printf("%s@%d %s: %s (slab %d B in %d slabs, resident %d B)\n",
					c.Strategy, c.P, c.Device, status, c.CertifiedByte, c.SlabCount, c.ResidentByte)
			}
		}
		checks = append(checks, cs...)
	}

	verdicts, err := memcheck.FitCatalog(spec, *gpus, *scale, *fitHid, *layers, *format, nil)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		out := struct {
			CrossChecks []crossCheck          `json:"cross_checks"`
			Fit         []memcheck.FitVerdict `json:"fit_verdicts"`
		}{checks, verdicts}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("\nfit verdicts at scale %d on %s (%d GPUs, %d B/GPU):\n",
			*scale, *machine, *gpus, spec.MemBytesPerGPU)
		for _, v := range verdicts {
			verdict := "fits"
			if !v.Fits {
				verdict = "NO FIT"
			}
			fmt.Printf("  %-10s %-7s n=%-11d %14d B  %s\n", v.Dataset, v.Strategy, v.N, v.Bytes, verdict)
		}
	}

	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mggcn-memcheck: %d disagreement(s)\n", findings)
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("mggcn-memcheck: certified")
	}
}

// degrade mirrors shrinkAfterLoss's strategy fallback: 1.5D needs even P.
func degrade(name string, p int) string {
	if name == "1.5d" && p%2 != 0 {
		return "1d-row"
	}
	return name
}

// certifyStrategy records one epoch of the named strategy at p devices
// under the allocation meter and cross-checks all three legs per device.
func certifyStrategy(name string, g *graph.Graph, cfg core.Config, p int) []crossCheck {
	cfg.P = p
	meter := sim.NewAllocMeter()

	var (
		tg       *sim.Graph
		dims     []int
		model    func(dev int) memcheck.Model
		env      func(dev int) schedcheck.Env
		poolUsed func(dev int) int64
	)
	switch name {
	case "1d-row", "1d-col", "1.5d":
		strategies := map[string]core.Strategy{
			"1d-row": core.Strategy1DRow, "1d-col": core.Strategy1DCol, "1.5d": core.Strategy15D,
		}
		cfg.Strategy = strategies[name]
		cfg.ExecObserver = meter
		tr, err := core.NewTrainer(g, cfg)
		if err != nil {
			log.Fatalf("%s@%d: %v", name, p, err)
		}
		if _, err := tr.RunEpoch(); err != nil {
			log.Fatalf("%s@%d: %v", name, p, err)
		}
		tg, dims = tr.LastGraph(), tr.Dims
		model = func(dev int) memcheck.Model {
			return memcheck.Model{Dims: dims, P: p, Device: dev, Overlap: cfg.Overlap}
		}
		env = func(dev int) schedcheck.Env {
			return memcheck.DeviceEnv(int64(tr.DeviceRows(dev)), int64(tr.MaxTileRows()),
				tr.AdjacencyBytes(dev), dims)
		}
		poolUsed = tr.PoolUsed
	case "gat":
		gm := nn.NewGAT(g, nn.LayerDims(g.FeatDim, cfg.Hidden, 2, g.Classes), 3)
		cfg.ExecObserver = meter
		dist, err := core.NewGATDist(g, gm, cfg)
		if err != nil {
			log.Fatalf("gat@%d: %v", p, err)
		}
		if _, _, err := dist.Forward(); err != nil {
			log.Fatalf("gat@%d: %v", p, err)
		}
		tg, dims = dist.LastGraph(), gm.Dims
		model = func(dev int) memcheck.Model {
			return memcheck.Model{Dims: dims, P: p, Device: dev, Overlap: cfg.Overlap}
		}
		env = func(dev int) schedcheck.Env {
			return memcheck.DeviceEnv(int64(dist.DeviceRows(dev)), int64(dist.MaxTileRows()),
				dist.AdjacencyBytes(dev), dims)
		}
		poolUsed = dist.PoolUsed
	case "sampled":
		scfg := core.DefaultSampledConfig(cfg.Spec, p, 1)
		scfg.Hidden = cfg.Hidden
		scfg.Layers = 2
		scfg.Fanouts = []int{4, 6}
		probe, err := core.NewSampledTrainer(g, scfg)
		if err != nil {
			log.Fatalf("sampled@%d: %v", p, err)
		}
		// Size the batch so every device owns the same number of steps, at
		// least 4 — the closed form's order-independence precondition.
		tv := probe.TrainVertexCount()
		for b := tv; b >= 1; b-- {
			if B := (tv + b - 1) / b; B%p == 0 && B/p >= 4 {
				scfg.Batch = b
				break
			}
		}
		scfg.ExecObserver = meter
		tr, err := core.NewSampledTrainer(g, scfg)
		if err != nil {
			log.Fatalf("sampled@%d: %v", p, err)
		}
		stats, err := tr.RunEpoch()
		if err != nil {
			log.Fatalf("sampled@%d: %v", p, err)
		}
		tg = tr.LastGraph()
		dims = nn.LayerDims(g.FeatDim, scfg.Hidden, scfg.Layers, g.Classes)
		caps := tr.FrontierCapacities()
		steps := stats.Batches / p
		cacheRows := tr.Caches()[0].Slab.Rows
		model = func(dev int) memcheck.Model {
			return memcheck.Model{Dims: dims, P: p, Device: dev, Caps: caps, Depth: tr.Depth(), Steps: steps}
		}
		env = func(dev int) schedcheck.Env { return memcheck.SampledEnv(caps, cacheRows, dims) }
		poolUsed = tr.PoolUsed
	case "cagnet":
		// The baseline is a phantom cost model with no slab access sets:
		// only the resident closed form exists, cross-checked against
		// baseline.CAGNETConfig.MemoryBytes.
		c := baseline.NewCAGNET(cfg.Spec, p, cfg.MemScale, cfg.Hidden, cfg.Layers)
		dims = nn.LayerDims(g.FeatDim, cfg.Hidden, cfg.Layers, g.Classes)
		fp, err := memcheck.PeakForm("cagnet", memcheck.Model{Dims: dims, P: p, Device: 0})
		if err != nil {
			log.Fatalf("cagnet@%d: %v", p, err)
		}
		S := int64(cfg.MemScale)
		nn64, m := int64(g.N())*S, g.M()*S
		rows := (nn64 + int64(p) - 1) / int64(p)
		got, err := fp.Resident.Eval(memcheck.CagnetEnv(rows, m/int64(p), dims))
		if err != nil {
			log.Fatalf("cagnet@%d: %v", p, err)
		}
		want := c.MemoryBytes(g)
		return []crossCheck{{
			Strategy: name, P: p, Device: "model",
			ResidentByte: got, PoolByte: want, OK: got == want,
		}}
	}

	live := memcheck.PeakLiveSlabs(tg)
	var out []crossCheck
	for d := 0; d < p; d++ {
		fp, err := memcheck.PeakForm(name, model(d))
		if err != nil {
			log.Fatalf("%s@%d d%d: %v", name, p, d, err)
		}
		if fp.Uncertified != "" {
			log.Fatalf("%s@%d d%d: uncertified: %s", name, p, d, fp.Uncertified)
		}
		e := env(d)
		certified, err := fp.SlabBytes.Eval(e)
		if err != nil {
			log.Fatalf("%s@%d d%d: %v", name, p, d, err)
		}
		resident, err := fp.Resident.Eval(e)
		if err != nil {
			log.Fatalf("%s@%d d%d: %v", name, p, d, err)
		}
		key := fmt.Sprintf("d%d", d)
		c := crossCheck{
			Strategy: name, P: p, Device: key,
			CertifiedByte: certified,
			LivenessByte:  live.Bytes[key],
			MeterByte:     meter.SlabPeakBytes()[key],
			SlabCount:     fp.SlabCount,
			ResidentByte:  resident,
			PoolByte:      poolUsed(d),
		}
		c.OK = c.CertifiedByte == c.LivenessByte && c.CertifiedByte == c.MeterByte &&
			c.SlabCount == live.Count[key] && c.SlabCount == meter.SlabPeakCount()[key] &&
			c.ResidentByte == c.PoolByte
		out = append(out, c)
	}
	return out
}
