// Command mggcn-san runs the task-graph sanitizer (internal/san) against
// the real recorded epoch graphs of the shipped training strategies: the
// static happens-before check over declared buffer accesses, the §4.2
// live-buffer high-water bound, the shadow replay that compares actual
// accesses to declared ones, and seeded adversarial replays that must stay
// bit-identical to the default executor.
//
// Usage:
//
//	go run ./cmd/mggcn-san                  # sanitize every strategy
//	go run ./cmd/mggcn-san -strategy 1d-row -seeds 8
//	go run ./cmd/mggcn-san -ignore-fences   # model removed cross-stream fences
//
// It exits 0 when every check passes and 1 on any finding. With
// -ignore-fences the expectation inverts: the fence-removed model must
// produce conflicts (the graphs genuinely rely on the fences), so zero
// findings become the failure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mggcn/internal/core"
	"mggcn/internal/gen"
	"mggcn/internal/graph"
	"mggcn/internal/nn"
	"mggcn/internal/san"
	"mggcn/internal/sim"
	"mggcn/internal/tensor"
)

func main() {
	var (
		machine  = flag.String("machine", "a100", "machine: v100 or a100")
		gpus     = flag.Int("gpus", 4, "number of GPUs (1-8)")
		strategy = flag.String("strategy", "all", "1d-row, 1d-col, 1.5d, gat, or all")
		hidden   = flag.Int("hidden", 16, "hidden layer width")
		layers   = flag.Int("layers", 2, "layer count")
		n        = flag.Int("n", 160, "synthetic vertex count")
		degree   = flag.Int("degree", 8, "synthetic average degree")
		features = flag.Int("features", 12, "synthetic feature width")
		classes  = flag.Int("classes", 4, "synthetic class count")
		seeds    = flag.Int("seeds", 4, "adversarial replay seeds per strategy")
		noFences = flag.Bool("ignore-fences", false, "model removed cross-stream fences; conflicts are then expected")
	)
	flag.Parse()

	var spec sim.MachineSpec
	switch strings.ToLower(*machine) {
	case "v100", "dgx-1", "dgx-v100":
		spec = sim.DGXV100()
	case "a100", "dgx-a100":
		spec = sim.DGXA100()
	default:
		log.Fatalf("unknown machine %q (want v100 or a100)", *machine)
	}

	g := gen.Generate("san", gen.DefaultBTER(*n, float64(*degree), 99), *features, *classes, false)

	strategies := map[string]core.Strategy{
		"1d-row": core.Strategy1DRow,
		"1d-col": core.Strategy1DCol,
		"1.5d":   core.Strategy15D,
	}
	var names []string
	switch *strategy {
	case "all":
		names = []string{"1d-row", "1d-col", "1.5d", "gat"}
	default:
		if _, ok := strategies[*strategy]; !ok && *strategy != "gat" {
			log.Fatalf("unknown strategy %q", *strategy)
		}
		names = []string{*strategy}
	}

	cfg := core.DefaultConfig(spec, *gpus, 1)
	cfg.MemScale = 1
	cfg.Hidden = *hidden
	cfg.Layers = *layers
	cfg.LR = 0.01
	cfg.Seed = 7
	cfg.Overlap = true

	findings := 0
	for _, name := range names {
		if name == "gat" {
			findings += sanitizeGAT(g, cfg, *seeds, *noFences)
			continue
		}
		c := cfg
		c.Strategy = strategies[name]
		findings += sanitizeGCN(name, g, c, *seeds, *noFences)
	}
	if *noFences {
		// The fence-removed model must surface, somewhere, the orderings
		// the graphs really depend on; total silence means the access
		// declarations went blind (a strategy whose deps alone order every
		// conflict — e.g. allreduce-based 1.5D — is legitimately quiet).
		if fenceConflicts == 0 {
			fmt.Fprintln(os.Stderr, "mggcn-san: fence-removed model reports no conflicts anywhere — declarations have lost their teeth")
			os.Exit(1)
		}
		fmt.Printf("mggcn-san: fence removal exposes %d conflicts across strategies (expected)\n", fenceConflicts)
		return
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mggcn-san: %d finding(s)\n", findings)
		os.Exit(1)
	}
	fmt.Println("mggcn-san: clean")
}

// fenceConflicts accumulates, across strategies, the conflicts the
// fence-removed model exposes; main requires it to be nonzero.
var fenceConflicts int

// checkGraph runs the static checks shared by every strategy: the
// happens-before conflict scan and the §4.2 live-buffer bound. Returns the
// finding count.
func checkGraph(name string, tg *sim.Graph, layers int, noFences bool) int {
	findings := 0
	conflicts := san.Check(tg, san.Options{IgnoreFences: noFences})
	if noFences {
		fenceConflicts += len(conflicts)
		if len(conflicts) == 0 {
			fmt.Printf("%s: fence-removed model: no conflicts (deps alone order this strategy)\n", name)
		} else {
			fmt.Printf("%s: fence removal exposes %d conflicts (expected), e.g. %v\n", name, len(conflicts), conflicts[0])
		}
		return 0
	}
	for _, c := range conflicts {
		fmt.Printf("%s: unordered conflict: %v\n", name, c)
		findings++
	}
	bound := layers + 3
	for dev, hw := range san.LiveHighWater(tg) {
		if hw > bound {
			fmt.Printf("%s: %s has %d slab buffers live at once, want <= L+3 = %d\n", name, dev, hw, bound)
			findings++
		}
	}
	return findings
}

func sanitizeGCN(name string, g *graph.Graph, cfg core.Config, seeds int, noFences bool) int {
	tr, err := core.NewTrainer(g, cfg)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	base, err := tr.RunEpoch()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	findings := checkGraph(name, tr.LastGraph(), cfg.Layers, noFences)
	if noFences {
		return findings
	}

	shTr, err := core.NewTrainer(g, cfg)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	sh := san.NewShadow(shTr.Registry())
	shTr.Cfg.ExecObserver = sh
	if _, err := shTr.RunEpoch(); err != nil {
		log.Fatalf("%s: shadow: %v", name, err)
	}
	for _, f := range sh.Findings {
		fmt.Printf("%s: shadow: %v\n", name, f)
		findings++
	}

	for seed := int64(1); seed <= int64(seeds); seed++ {
		c := cfg
		c.ExecSeed = seed
		c.ExecWorkers = 4
		adv, err := core.NewTrainer(g, c)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		got, err := adv.RunEpoch()
		if err != nil {
			log.Fatalf("%s: adversarial seed %d: %v", name, seed, err)
		}
		if got.Loss != base.Loss { // vet:ok floateq: adversarial replay parity is bit-exact by contract
			fmt.Printf("%s: adversarial seed %d: loss %v != %v\n", name, seed, got.Loss, base.Loss)
			findings++
		}
		for l := range tr.Weights() {
			if d := tensor.MaxAbsDiff(tr.Weights()[l], adv.Weights()[l]); d != 0 {
				fmt.Printf("%s: adversarial seed %d: layer %d weights diverge by %g\n", name, seed, l, d)
				findings++
			}
		}
	}
	fmt.Printf("%s: ok (%d tasks, %d adversarial seeds)\n", name, len(tr.LastGraph().Tasks), seeds)
	return findings
}

func sanitizeGAT(g *graph.Graph, cfg core.Config, seeds int, noFences bool) int {
	model := nn.NewGAT(g, nn.LayerDims(g.FeatDim, cfg.Hidden, 2, g.Classes), 3)
	dist, err := core.NewGATDist(g, model, cfg)
	if err != nil {
		log.Fatalf("gat: %v", err)
	}
	want, _, err := dist.Forward()
	if err != nil {
		log.Fatalf("gat: %v", err)
	}
	findings := checkGraph("gat", dist.LastGraph(), len(model.Dims)-1, noFences)
	if noFences {
		return findings
	}

	shDist, err := core.NewGATDist(g, model, cfg)
	if err != nil {
		log.Fatalf("gat: %v", err)
	}
	sh := san.NewShadow(shDist.Registry())
	shDist.Cfg.ExecObserver = sh
	if _, _, err := shDist.Forward(); err != nil {
		log.Fatalf("gat: shadow: %v", err)
	}
	for _, f := range sh.Findings {
		fmt.Printf("gat: shadow: %v\n", f)
		findings++
	}

	for seed := int64(1); seed <= int64(seeds); seed++ {
		c := cfg
		c.ExecSeed = seed
		c.ExecWorkers = 4
		adv, err := core.NewGATDist(g, model, c)
		if err != nil {
			log.Fatalf("gat: %v", err)
		}
		got, _, err := adv.Forward()
		if err != nil {
			log.Fatalf("gat: adversarial seed %d: %v", seed, err)
		}
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			fmt.Printf("gat: adversarial seed %d: forward diverges by %g\n", seed, d)
			findings++
		}
	}
	fmt.Printf("gat: ok (%d tasks, %d adversarial seeds)\n", len(dist.LastGraph().Tasks), seeds)
	return findings
}
