package mggcn

// Fault-free test helpers: epochs in these tests must not fail, so any
// error is a test-infrastructure bug and panics.

func mustEpoch(tr *Trainer) *EpochStats {
	s, err := tr.RunEpoch()
	if err != nil {
		panic(err)
	}
	return s
}

func mustTrain(tr *Trainer, epochs int) []*EpochStats {
	out, err := tr.Train(epochs)
	if err != nil {
		panic(err)
	}
	return out
}
