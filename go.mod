module mggcn

go 1.22
